"""Sparse paged memory and the loaded-program container.

The memory model is deliberately strict: reads and writes to pages that were
never mapped raise an :class:`~repro.isa.semantics.Trap` with kind
``ACCESS_VIOLATION``, which is exactly what the precise-trap machinery of the
co-designed VM needs to exercise (Section 2.2 of the paper).

Pages additionally carry R/W/X protection bits (``PROT_*``): a mapped page
accessed against its protection raises a precise ``PROTECTION_VIOLATION``
trap carrying the faulting address and the access kind.  Guest stores also
drive two pieces of VM bookkeeping:

* **dirty tracking** — the first guest store to a page records it in the
  dirty set (host-side ``write_bytes`` loads are exempt, so a loaded image
  starts clean);
* **code-write watching** — the translation cache watches pages holding
  installed fragments; a guest store into a watched page calls the
  registered hook *after* the store completes, which is how precise
  self-modifying-code invalidation works (``docs/robustness.md``).

The fast paths are three lazily/eagerly maintained page dicts whose
``get`` methods the tier-2 jit binds at compile time, so they are stable
attributes that are mutated in place and never reassigned:

``_read_ok``
    mapped pages with ``PROT_READ`` — the load fast path;
``_exec_ok``
    mapped pages with ``PROT_EXEC`` — the fetch fast path;
``_write_ok``
    mapped, writable, *unwatched* pages that are already dirty — the
    store fast path.  A store missing here takes the slow path, which
    delivers the right trap or performs the store with dirty/watch
    bookkeeping (and installs the fast entry when the page is eligible),
    so dirty tracking and SMC detection are exact at zero steady-state
    cost.
"""

from repro.isa.semantics import Trap, TrapKind
from repro.utils.bitops import MASK64

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

#: Page-protection bits (guest-visible through the ``protect`` PAL call).
PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4
PROT_ALL = PROT_READ | PROT_WRITE | PROT_EXEC

_ACCESS_NAMES = {PROT_READ: "read", PROT_WRITE: "write", PROT_EXEC: "exec"}


class Segment:
    """A named, contiguous region of the address space."""

    __slots__ = ("name", "base", "size")

    def __init__(self, name, base, size):
        self.name = name
        self.base = base
        self.size = size

    @property
    def end(self):
        return self.base + self.size

    def __repr__(self):
        return f"Segment({self.name!r}, base={self.base:#x}, size={self.size:#x})"


class Memory:
    """Sparse paged byte memory with strict access checking."""

    def __init__(self):
        self._pages = {}
        self.segments = []
        #: page index -> protection bits (pages absent here are unmapped)
        self._prot = {}
        #: fast-path dicts — stable attributes, mutated in place (the jit
        #: binds their bound ``get`` methods at compile time)
        self._read_ok = {}
        self._exec_ok = {}
        self._write_ok = {}
        #: pages at least one guest store has touched
        self._dirty = set()
        #: pages the translation cache watches for code writes
        self._watched = set()
        #: hook(address, size, vpc) fired after a store into a watched page
        self._code_write_hook = None

    def map_segment(self, name, base, size, prot=PROT_ALL):
        """Map a zero-filled segment; returns the :class:`Segment` record.

        Rejects empty or negative sizes and byte ranges overlapping an
        existing segment — both were previously accepted silently and
        corrupted the page table (a later segment re-zeroed shared pages).
        """
        if size <= 0:
            raise ValueError(
                f"cannot map segment {name!r}: size must be positive, "
                f"got {size:#x}")
        end = base + size
        for existing in self.segments:
            if base < existing.end and existing.base < end:
                raise ValueError(
                    f"cannot map segment {name!r} at "
                    f"[{base:#x}, {end:#x}): overlaps segment "
                    f"{existing.name!r} at [{existing.base:#x}, "
                    f"{existing.end:#x})")
        segment = Segment(name, base, size)
        first = base >> PAGE_SHIFT
        last = (base + size - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            if page not in self._pages:
                self._pages[page] = bytearray(PAGE_SIZE)
            self._set_prot(page, prot)
        self.segments.append(segment)
        return segment

    def is_mapped(self, address):
        """True when the byte at ``address`` belongs to a mapped page."""
        return (address >> PAGE_SHIFT) in self._pages

    def _page_for(self, address, vpc=None):
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None:
            raise Trap(TrapKind.ACCESS_VIOLATION, vpc=vpc, address=address)
        return page

    # -- protection --------------------------------------------------------

    def _set_prot(self, page, prot):
        """Set one page's protection and rebuild its fast-path entries."""
        self._prot[page] = prot
        data = self._pages[page]
        if prot & PROT_READ:
            self._read_ok[page] = data
        else:
            self._read_ok.pop(page, None)
        if prot & PROT_EXEC:
            self._exec_ok[page] = data
        else:
            self._exec_ok.pop(page, None)
        # the store fast path additionally requires dirty + unwatched
        if (prot & PROT_WRITE) and page in self._dirty and \
                page not in self._watched:
            self._write_ok[page] = data
        else:
            self._write_ok.pop(page, None)

    def protect(self, base, size, prot):
        """Set protection bits over ``[base, base + size)``.

        Every page in the range must be mapped; raises ``ValueError``
        naming the first unmapped page otherwise (the ``protect`` PAL
        call turns that into an error return, not a trap).
        """
        if size <= 0:
            raise ValueError(f"protect size must be positive, got {size}")
        if prot & ~PROT_ALL:
            raise ValueError(f"invalid protection bits {prot:#x}")
        first = base >> PAGE_SHIFT
        last = (base + size - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            if page not in self._pages:
                raise ValueError(
                    f"protect range [{base:#x}, {base + size:#x}) covers "
                    f"unmapped page {page << PAGE_SHIFT:#x}")
        for page in range(first, last + 1):
            self._set_prot(page, prot)

    def page_prot(self, address):
        """Protection bits of the page holding ``address`` (None when
        unmapped)."""
        return self._prot.get(address >> PAGE_SHIFT)

    def dirty_pages(self):
        """Base addresses of pages at least one guest store touched."""
        return sorted(page << PAGE_SHIFT for page in self._dirty)

    # -- code-write watching (SMC detection) -------------------------------

    def set_code_write_hook(self, hook):
        """Register the hook fired after a guest store to a watched page."""
        self._code_write_hook = hook

    def watch_page(self, page):
        """Start watching a page for guest stores (by page index)."""
        self._watched.add(page)
        self._write_ok.pop(page, None)

    def unwatch_page(self, page):
        """Stop watching a page; the store fast path repopulates lazily."""
        self._watched.discard(page)

    # -- raw byte access ---------------------------------------------------

    def write_bytes(self, address, data):
        """Write a byte string, page by page (host-side: no protection
        checks, no dirty marking — the loader and snapshot tooling use
        this)."""
        offset = 0
        while offset < len(data):
            page = self._page_for(address + offset)
            start = (address + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - start, len(data) - offset)
            page[start:start + chunk] = data[offset:offset + chunk]
            offset += chunk

    def read_bytes(self, address, count):
        """Read ``count`` bytes as a bytes object (host-side: unchecked)."""
        out = bytearray()
        offset = 0
        while offset < count:
            page = self._page_for(address + offset)
            start = (address + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - start, count - offset)
            out += page[start:start + chunk]
            offset += chunk
        return bytes(out)

    # -- sized accesses (little-endian, as on Alpha) -------------------------

    def _fault(self, address, vpc, access):
        """The slow-path miss verdict: unmapped or protection-denied."""
        if (address >> PAGE_SHIFT) not in self._pages:
            raise Trap(TrapKind.ACCESS_VIOLATION, vpc=vpc, address=address)
        raise Trap(TrapKind.PROTECTION_VIOLATION, vpc=vpc, address=address,
                   access=_ACCESS_NAMES[access])

    def load(self, address, size, vpc=None):
        """Load an unsigned little-endian value of 1/2/4/8 bytes.

        Naturally-aligned accesses only; misalignment raises an UNALIGNED
        trap exactly as Alpha hardware would.
        """
        if address & (size - 1):
            raise Trap(TrapKind.UNALIGNED, vpc=vpc, address=address)
        page = self._read_ok.get(address >> PAGE_SHIFT)
        if page is None:
            self._fault(address, vpc, PROT_READ)
        start = address & PAGE_MASK
        # a naturally-aligned access never straddles a page (size divides
        # PAGE_SIZE), so the single-page slice is the only path
        return int.from_bytes(page[start:start + size], "little")

    def fetch(self, address, vpc=None):
        """Fetch one 32-bit instruction word (the exec-checked read)."""
        if address & 3:
            raise Trap(TrapKind.UNALIGNED, vpc=vpc, address=address)
        page = self._exec_ok.get(address >> PAGE_SHIFT)
        if page is None:
            self._fault(address, vpc, PROT_EXEC)
        start = address & PAGE_MASK
        return int.from_bytes(page[start:start + 4], "little")

    def store(self, address, value, size, vpc=None):
        """Store the low ``size`` bytes of ``value`` little-endian."""
        if address & (size - 1):
            raise Trap(TrapKind.UNALIGNED, vpc=vpc, address=address)
        index = address >> PAGE_SHIFT
        page = self._write_ok.get(index)
        value &= (1 << (8 * size)) - 1
        start = address & PAGE_MASK
        if page is not None:
            page[start:start + size] = value.to_bytes(size, "little")
            return
        # slow path: trap, or first-store / watched-page bookkeeping
        prot = self._prot.get(index)
        if prot is None or not prot & PROT_WRITE:
            self._fault(address, vpc, PROT_WRITE)
        page = self._pages[index]
        page[start:start + size] = value.to_bytes(size, "little")
        self._dirty.add(index)
        if index in self._watched:
            hook = self._code_write_hook
            if hook is not None:
                # fired after the store: the write is architecturally
                # complete before any SMC invalidation/deopt it triggers
                hook(address, size, vpc)
        else:
            self._write_ok[index] = page

    def snapshot(self):
        """Deep copy of the memory contents, for co-simulation checks."""
        clone = Memory()
        clone._pages = {num: bytearray(page)
                        for num, page in self._pages.items()}
        clone.segments = list(self.segments)
        clone._dirty = set(self._dirty)
        for num in clone._pages:
            clone._set_prot(num, self._prot.get(num, PROT_ALL))
        return clone


class Program:
    """A loaded V-ISA program: memory image plus metadata from the assembler."""

    def __init__(self, memory, entry, symbols=None, text_base=0,
                 text_size=0, source_name="<anonymous>", input_script=b""):
        self.memory = memory
        self.entry = entry
        self.symbols = dict(symbols or {})
        self.text_base = text_base
        self.text_size = text_size
        self.source_name = source_name
        #: scripted console input consumed by the ``getc`` PAL call;
        #: part of program identity (see ``persist.store.program_digest``)
        self.input_script = bytes(input_script)

    def text_range(self):
        """Half-open [base, end) byte range of the text segment."""
        return (self.text_base, self.text_base + self.text_size)

    def __repr__(self):
        return (f"Program({self.source_name!r}, entry={self.entry:#x}, "
                f"text={self.text_base:#x}+{self.text_size:#x})")
