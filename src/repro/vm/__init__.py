"""The co-designed virtual machine (Fig. 1 of the paper).

``CoDesignedVM`` owns the interpreter, the MRET profiler, the translator,
the translation cache and the functional fragment executor, switching
between interpretation, translation and translated-code execution exactly
as Section 4.1 describes.
"""

from repro.vm.config import VMConfig
from repro.vm.events import TraceRecord
from repro.vm.executor import FragmentExecutor, ExecResult, ExitReason
from repro.vm.traps import VMTrap, reconstruct_state
from repro.vm.stats import VMStats
from repro.vm.system import CoDesignedVM

__all__ = [
    "VMConfig",
    "TraceRecord",
    "FragmentExecutor",
    "ExecResult",
    "ExitReason",
    "VMTrap",
    "reconstruct_state",
    "VMStats",
    "CoDesignedVM",
]
