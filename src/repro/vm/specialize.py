"""Translation-time specialization of fragment bodies into step closures.

QEMU-style DBTs pre-lower guest code into directly executable host forms
instead of re-interpreting an IR on every pass; this module does the same
for the functional executor.  :func:`compile_fragment` lowers a laid-out
fragment body into a flat list of pre-bound Python closures — operand
sources, ALU functions, branch predicates, load sizes, ALPHA
instruction-count weights, statistics increments and the
modified-format staleness checks are all resolved once, at compile time,
instead of being re-derived per executed instruction.

Each closure has the signature ``step(ex, regs, state)`` where ``ex`` is
the :class:`~repro.vm.executor.FragmentExecutor`; it returns the same
outcome protocol as the naive engine's ``_execute`` (``None`` to fall
through, ``("goto", (fragment, 0))`` for an intra-cache transfer,
``("exit", ExecResult)`` to leave translated code) and raises
:class:`~repro.isa.semantics.Trap` for precise traps.  All mutable
machine state is reached through ``ex`` so compiled code never captures
one executor's accumulators, memory, or statistics — a fragment can be
re-compiled for a different executor (the compiled-code cache is keyed
per executor, see ``FragmentExecutor._code_for``).

Two variants exist per fragment, selected when the executor runs:

* **trace-off** (the hot path): no :class:`TraceRecord` source/dest
  tuples are ever built, because nothing consumes them;
* **trace-on**: per-instruction statistics are still pre-bound, but the
  semantics-plus-trace work is delegated to the naive reference
  dispatch, which keeps the emitted trace byte-identical to the naive
  engine's by construction.

These closures are *tier 1* of the execution stack: under the default
``jit`` engine, fragments that stay hot past ``VMConfig.jit_threshold``
are re-lowered once more by :mod:`repro.vm.jit` into a single generated
Python function per body (same outcome protocol, same statistics,
batched), with these closures remaining the fallback for cold
fragments, trace-on visits, and bodies the jit declines to compile.

Direct branch targets are pre-resolved to their target fragment at
compile time: fragment entry addresses are stable for the life of the
translation cache (a flush drops every fragment, including the one being
compiled), and any patch that rewrites a branch invalidates the compiled
body (see ``TranslationCache._apply_patches``).
"""

from repro.ildp_isa.opcodes import IFormat, IOp
from repro.ildp_isa.semantics import IALU_OPS
from repro.isa.semantics import BRANCH_CONDITIONS, CMOV_CONDITIONS, Trap, \
    TrapKind
from repro.utils.bitops import MASK64, sext
from repro.vm.executor import (
    _ALPHA_WEIGHTS,
    ExecResult,
    ExitReason,
    StalenessError,
)

_ZERO_REG = 31


# -- operand access -----------------------------------------------------------

def _gpr_getter(index, track):
    """Read one GPR; with the strict modified-format staleness check."""
    if track:
        def get(ex, regs):
            if index in ex._stale:
                raise StalenessError(
                    f"r{index} read while operationally stale (usage "
                    "analysis marked it non-operational)")
            return regs[index]
    else:
        def get(ex, regs):
            return regs[index]
    return get


def _operand_getter(instr, source, track):
    """Pre-bound equivalent of the naive engine's ``_operand``."""
    if source == "acc":
        acc = instr.acc

        def get(ex, regs):
            return ex.accs[acc]
        return get
    if source == "gpr":
        return _gpr_getter(instr.gpr, track)
    if source == "gpr2":
        return _gpr_getter(instr.gpr2, track)
    if source == "imm":
        imm = instr.imm

        def get(ex, regs):
            return imm
        return get

    def get(ex, regs):  # "zero" and None
        return 0
    return get


def _commit_fn(instr, fmt, track):
    """Pre-bound equivalent of ``_commit_result`` (acc first, then GPR)."""
    acc = instr.acc
    dest = instr.dest_gpr if fmt is not IFormat.BASIC else None
    if dest == _ZERO_REG:
        dest = None        # R31 writes are discarded, and never tracked
    operational = True if fmt is IFormat.ALPHA else instr.operational

    if dest is None:
        if acc is None:
            def commit(ex, regs, result):
                return None
        else:
            def commit(ex, regs, result):
                ex.accs[acc] = result
    elif not track:
        if acc is None:
            def commit(ex, regs, result):
                regs[dest] = result & MASK64
        else:
            def commit(ex, regs, result):
                ex.accs[acc] = result
                regs[dest] = result & MASK64
    elif operational:
        if acc is None:
            def commit(ex, regs, result):
                regs[dest] = result & MASK64
                ex._stale.discard(dest)
        else:
            def commit(ex, regs, result):
                ex.accs[acc] = result
                regs[dest] = result & MASK64
                ex._stale.discard(dest)
    else:
        if acc is None:
            def commit(ex, regs, result):
                regs[dest] = result & MASK64
                ex._stale.add(dest)
        else:
            def commit(ex, regs, result):
                ex.accs[acc] = result
                regs[dest] = result & MASK64
                ex._stale.add(dest)
    return commit


def _resolve_goto(tcache, target):
    """Pre-resolved ``("goto", ...)`` outcome for a direct transfer."""
    fragment = tcache.fragment_at(target)
    if fragment is None:  # pragma: no cover - layout guarantees entries
        raise AssertionError(
            f"control transfer to non-entry address {target:#x}")
    return ("goto", (fragment, 0))


# -- per-IOp builders (trace-off fast path) -----------------------------------
#
# Every builder receives (ex, instr, fmt, track, weight) and returns a step
# closure.  ``weight``/``iop``/``v_weight`` feed the inlined statistics
# block that replaces ``VMStats.count_iinstr``.

def _build_alu(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight
    op_name = instr.op
    get_a = _operand_getter(instr, instr.src_a, track)
    get_b = _operand_getter(instr, instr.src_b, track)
    commit = _commit_fn(instr, fmt, track)

    if fmt is IFormat.ALPHA and op_name in CMOV_CONDITIONS:
        cond = CMOV_CONDITIONS[op_name]
        dest = instr.dest_gpr

        if dest is None:
            def step(ex, regs, state):
                stats = ex.stats
                stats.iinstructions_executed += weight
                stats.iop_counts[iop] += 1
                stats.source_instructions_executed += v_w
                result = get_b(ex, regs) if cond(get_a(ex, regs)) else 0
                commit(ex, regs, result)
        else:
            def step(ex, regs, state):
                stats = ex.stats
                stats.iinstructions_executed += weight
                stats.iop_counts[iop] += 1
                stats.source_instructions_executed += v_w
                a = get_a(ex, regs)
                b = get_b(ex, regs)
                commit(ex, regs, b if cond(a) else regs[dest])
        return step

    op = IALU_OPS[op_name]

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
        commit(ex, regs, op(get_a(ex, regs), get_b(ex, regs)))
    return step


def _build_load(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight
    get_addr = _operand_getter(instr, instr.addr_src, track)
    commit = _commit_fn(instr, fmt, track)
    imm, size, vpc = instr.imm, instr.mem_size, instr.vpc
    bits = 8 * size

    if instr.mem_signed:
        def step(ex, regs, state):
            stats = ex.stats
            stats.iinstructions_executed += weight
            stats.iop_counts[iop] += 1
            stats.source_instructions_executed += v_w
            address = (get_addr(ex, regs) + imm) & MASK64
            raw = ex.memory.load(address, size, vpc=vpc)
            commit(ex, regs, sext(raw, bits))
    else:
        def step(ex, regs, state):
            stats = ex.stats
            stats.iinstructions_executed += weight
            stats.iop_counts[iop] += 1
            stats.source_instructions_executed += v_w
            address = (get_addr(ex, regs) + imm) & MASK64
            commit(ex, regs, ex.memory.load(address, size, vpc=vpc))
    return step


def _build_store(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight
    get_addr = _operand_getter(instr, instr.addr_src, track)
    get_data = _operand_getter(instr, instr.data_src, track)
    imm, size, vpc = instr.imm, instr.mem_size, instr.vpc

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
        address = (get_addr(ex, regs) + imm) & MASK64
        data = get_data(ex, regs)
        ex.memory.store(address, data & MASK64, size, vpc=vpc)
    return step


def _build_copy_to_gpr(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight
    acc, gpr = instr.acc, instr.gpr
    if gpr == _ZERO_REG:
        def step(ex, regs, state):
            stats = ex.stats
            stats.iinstructions_executed += weight
            stats.iop_counts[iop] += 1
            stats.copies_executed += 1
            stats.source_instructions_executed += v_w
    elif track:
        def step(ex, regs, state):
            stats = ex.stats
            stats.iinstructions_executed += weight
            stats.iop_counts[iop] += 1
            stats.copies_executed += 1
            stats.source_instructions_executed += v_w
            regs[gpr] = ex.accs[acc] & MASK64
            ex._stale.discard(gpr)
    else:
        def step(ex, regs, state):
            stats = ex.stats
            stats.iinstructions_executed += weight
            stats.iop_counts[iop] += 1
            stats.copies_executed += 1
            stats.source_instructions_executed += v_w
            regs[gpr] = ex.accs[acc] & MASK64
    return step


def _build_copy_from_gpr(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight
    acc = instr.acc
    get = _gpr_getter(instr.gpr, track)

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.copies_executed += 1
        stats.source_instructions_executed += v_w
        ex.accs[acc] = get(ex, regs)
    return step


def _build_branch(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight
    cond = BRANCH_CONDITIONS[instr.op]
    get_cond = _operand_getter(instr, instr.cond_src, track)
    goto = _resolve_goto(ex.tcache, instr.target)

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
        if cond(get_cond(ex, regs) & MASK64):
            return goto
        return None
    return step


def _build_br(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight
    goto = _resolve_goto(ex.tcache, instr.target)

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
        return goto
    return step


def _build_set_vpc_base(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
    return step


def _build_save_vra(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight
    gpr, vtarget = instr.gpr, instr.vtarget

    if gpr == _ZERO_REG:
        return _build_set_vpc_base(ex, instr, fmt, track, weight)

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
        regs[gpr] = vtarget & MASK64
        if track:
            ex._stale.discard(gpr)
    return step


def _build_push_ras(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
        ex._push_ras(instr)
    return step


def _build_ret_ras(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
        return ex._do_ret_ras(instr, regs, fmt)
    return step


def _build_load_emb(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight
    acc, vtarget = instr.acc, instr.vtarget

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
        ex.accs[acc] = vtarget
    return step


def _build_call_translator(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight
    exit_outcome = ("exit", ExecResult(ExitReason.UNTRANSLATED,
                                       vpc=instr.vtarget))

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
        return exit_outcome
    return step


def _build_cond_call_translator(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight
    cond = BRANCH_CONDITIONS[instr.op]
    get_cond = _operand_getter(instr, instr.cond_src, track)
    exit_outcome = ("exit", ExecResult(ExitReason.UNTRANSLATED,
                                       vpc=instr.vtarget))

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
        if cond(get_cond(ex, regs) & MASK64):
            return exit_outcome
        return None
    return step


def _build_to_dispatch(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
        return ex._do_dispatch(instr, regs, fmt)
    return step


def _build_halt(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight
    exit_outcome = ("exit", ExecResult(ExitReason.HALT, vpc=instr.vpc))

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
        return exit_outcome
    return step


def _build_putc(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight
    get = _gpr_getter(16, track)

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
        ex.console.append(get(ex, regs) & 0xFF)
    return step


def _build_syscall(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight
    function, vpc = instr.imm, instr.vpc

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
        ex.pal.call(regs, function, vpc, translated=True)
    return step


def _build_gentrap(ex, instr, fmt, track, weight):
    iop, v_w = instr.iop, instr.v_weight
    vpc = instr.vpc

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        stats.source_instructions_executed += v_w
        raise Trap(TrapKind.GENTRAP, vpc=vpc)
    return step


_BUILDERS = {
    IOp.ALU: _build_alu,
    IOp.LOAD: _build_load,
    IOp.STORE: _build_store,
    IOp.COPY_TO_GPR: _build_copy_to_gpr,
    IOp.COPY_FROM_GPR: _build_copy_from_gpr,
    IOp.BRANCH: _build_branch,
    IOp.BR: _build_br,
    IOp.SET_VPC_BASE: _build_set_vpc_base,
    IOp.SAVE_VRA: _build_save_vra,
    IOp.PUSH_RAS: _build_push_ras,
    IOp.RET_RAS: _build_ret_ras,
    IOp.LOAD_EMB: _build_load_emb,
    IOp.CALL_TRANSLATOR: _build_call_translator,
    IOp.COND_CALL_TRANSLATOR: _build_cond_call_translator,
    IOp.TO_DISPATCH: _build_to_dispatch,
    IOp.HALT: _build_halt,
    IOp.PUTC: _build_putc,
    IOp.SYSCALL: _build_syscall,
    IOp.GENTRAP: _build_gentrap,
}


def _build_traced(ex, instr, fmt, index, weight):
    """Trace-on step: pre-bound statistics, naive reference semantics.

    Delegating the semantics-plus-trace work to ``_execute`` keeps the
    emitted :class:`TraceRecord` stream byte-identical to the naive
    engine's by construction; trace-collecting runs are dominated by
    record construction, not dispatch.
    """
    iop, v_w = instr.iop, instr.v_weight
    is_copy = instr.is_copy()

    def step(ex, regs, state):
        stats = ex.stats
        stats.iinstructions_executed += weight
        stats.iop_counts[iop] += 1
        if is_copy:
            stats.copies_executed += 1
        stats.source_instructions_executed += v_w
        return ex._execute(instr, iop, None, index, regs, fmt, state)
    return step


def compile_fragment(ex, fragment, traced):
    """Lower ``fragment.body`` into a flat list of step closures.

    ``traced`` selects the trace-on variant; ``ex`` supplies the config
    (strict-modified tracking) and the translation cache used to
    pre-resolve direct branch targets.  Must be called after the fragment
    is laid out (addresses, sizes and ``v_weight`` assigned) and must be
    re-run — via ``Fragment.invalidate_compiled`` — whenever a chaining
    patch rewrites a body instruction.
    """
    fmt = fragment.fmt
    track = fmt is IFormat.MODIFIED and ex.config.strict_modified
    alpha = fmt is IFormat.ALPHA
    code = []
    for index, instr in enumerate(fragment.body):
        weight = _ALPHA_WEIGHTS.get(instr.iop, 1) if alpha else 1
        if traced:
            code.append(_build_traced(ex, instr, fmt, index, weight))
        else:
            code.append(_BUILDERS[instr.iop](ex, instr, fmt, track, weight))
    return code
