"""Execution statistics the evaluation section reports.

Everything Table 2 and Figures 5/7 need comes from here: dynamic
I-instruction counts relative to V-ISA instructions, copy-instruction
percentages, static code-byte expansion, output-register usage histograms
(weighted by fragment execution counts), dispatch and RAS behaviour.
"""

from collections import Counter

from repro.translator.usage import ValueClass

#: Instructions a threaded interpreter spends per interpreted instruction
#: (paper Section 4.1: "each interpretation takes about 20 instructions").
INTERPRETATION_COST = 20


class VMStats:
    """Counters accumulated across one VM run."""

    def __init__(self):
        self.interpreted_instructions = 0
        #: interpreted instructions the translator would have elided
        #: (architectural NOPs and straightened-away plain BRs)
        self.interpreted_elided = 0
        #: executed translated instructions, ALPHA-format weighting applied
        self.iinstructions_executed = 0
        self.copies_executed = 0
        #: V-ISA instructions executed inside translated code
        self.source_instructions_executed = 0
        self.iop_counts = Counter()
        self.dispatch_runs = 0
        self.dispatch_instructions = 0
        self.ras_hits = 0
        self.ras_misses = 0
        self.fragments_created = 0
        self.superblocks_captured = 0
        self.translated_source_instructions = 0
        #: fid -> static usage-class histogram of the fragment's superblock
        self.fragment_usage = {}
        self.premature_terminations = 0
        self.traps_delivered = 0
        self.tcache_flushes = 0
        # -- graceful degradation (docs/robustness.md); all stay zero on
        # -- the fault-free path, so summary() is deliberately unchanged
        self.translation_failures = 0
        self.translation_pcs_blacklisted = 0
        self.tcache_capacity_flushes = 0
        self.flush_storms_suppressed = 0
        self.corrupt_fragments_detected = 0
        # -- hostile-guest survival (MMU / SMC / syscalls); zero unless
        # -- the guest self-modifies or revokes protections
        self.smc_detected = 0
        self.smc_invalidations = 0
        self.protect_invalidations = 0
        self.retranslate_deopts = 0
        self.stale_captures_discarded = 0

    # -- hooks ---------------------------------------------------------------

    def count_iinstr(self, instr, fmt, weight):
        self.iinstructions_executed += weight
        self.iop_counts[instr.iop] += 1
        if instr.is_copy():
            self.copies_executed += 1
        self.source_instructions_executed += instr.v_weight

    def count_dispatch(self):
        self.dispatch_runs += 1

    def count_dispatch_instructions(self, count):
        self.dispatch_instructions += count

    def count_ras(self, hit):
        if hit:
            self.ras_hits += 1
        else:
            self.ras_misses += 1

    def note_translation(self, result):
        """Record a finished translation (fragment + analyses)."""
        self.fragments_created += 1
        self.superblocks_captured += 1
        fragment = result.fragment
        self.translated_source_instructions += fragment.source_instr_count
        self.premature_terminations += fragment.premature_terminations
        if result.usage is not None:
            self.fragment_usage[fragment.fid] = result.usage.class_counts()

    # -- derived metrics ----------------------------------------------------------

    def total_v_instructions(self):
        """All V-ISA instructions executed (interpreted + translated)."""
        return (self.interpreted_instructions
                + self.source_instructions_executed)

    def committed_v_instructions(self):
        """Committed V-ISA instructions, counting only those that survive
        translation (no NOPs, no straightened-away plain BRs).

        Translated execution never counts elided instructions (they emit no
        I-ISA code, hence carry no ``v_weight``); subtracting the elided
        ones seen while interpreting yields a count directly comparable
        with a pure-interpreter reference run (the co-simulation invariant
        the differential tests check).
        """
        return self.total_v_instructions() - self.interpreted_elided

    def dynamic_expansion(self):
        """Executed translated instructions (dispatch included) per V-ISA
        instruction — Table 2 columns 2-3 / Fig. 5."""
        if self.source_instructions_executed == 0:
            return 0.0
        return ((self.iinstructions_executed + self.dispatch_instructions)
                / self.source_instructions_executed)

    def copy_percentage(self):
        """Copies as a share of executed translated instructions (Table 2)."""
        total = self.iinstructions_executed + self.dispatch_instructions
        if total == 0:
            return 0.0
        return 100.0 * self.copies_executed / total

    def static_expansion(self, tcache):
        """Translated static bytes per original static bytes (Table 2)."""
        source_bytes = 4 * sum(f.source_instr_count
                               for f in tcache.fragments)
        if source_bytes == 0:
            return 0.0
        return tcache.total_code_bytes() / source_bytes

    def dynamic_usage_histogram(self, tcache):
        """Fig. 7: output-register usage classes, weighted by how often
        each fragment executed."""
        totals = {vclass: 0 for vclass in ValueClass}
        for fragment in tcache.fragments:
            histogram = self.fragment_usage.get(fragment.fid)
            if histogram is None:
                continue
            weight = max(fragment.execution_count, 0)
            for vclass, count in histogram.items():
                totals[vclass] += count * weight
        return totals

    def ras_hit_rate(self):
        total = self.ras_hits + self.ras_misses
        return self.ras_hits / total if total else 0.0

    def interpretation_overhead(self):
        """Modelled interpreter instructions per translated source
        instruction (paper Section 4.1's "about 1,000": threshold x ~20
        instructions per interpretation)."""
        if self.translated_source_instructions == 0:
            return 0.0
        return (INTERPRETATION_COST * self.interpreted_instructions
                / self.translated_source_instructions)

    def summary(self):
        """A compact dict for reports and tests."""
        return {
            "interpreted": self.interpreted_instructions,
            "translated_v": self.source_instructions_executed,
            "iinstructions": self.iinstructions_executed,
            "dispatch_instructions": self.dispatch_instructions,
            "dynamic_expansion": round(self.dynamic_expansion(), 3),
            "copy_pct": round(self.copy_percentage(), 2),
            "fragments": self.fragments_created,
            "ras_hit_rate": round(self.ras_hit_rate(), 3),
            "premature_terminations": self.premature_terminations,
        }

    def resilience(self):
        """Degradation counters as a dict (all zero on fault-free runs).

        Kept separate from :meth:`summary` so existing cached summaries
        and the telemetry gauge set stay bit-identical when no fault
        machinery fires.
        """
        return {
            "translation_failures": self.translation_failures,
            "pcs_blacklisted": self.translation_pcs_blacklisted,
            "capacity_flushes": self.tcache_capacity_flushes,
            "flush_storms_suppressed": self.flush_storms_suppressed,
            "corrupt_fragments_detected": self.corrupt_fragments_detected,
            "smc_detected": self.smc_detected,
            "smc_invalidations": self.smc_invalidations,
            "protect_invalidations": self.protect_invalidations,
            "retranslate_deopts": self.retranslate_deopts,
            "stale_captures_discarded": self.stale_captures_discarded,
        }

    def render_lines(self):
        """The :meth:`summary` dict as aligned ``name = value`` report
        lines (used by the CLI ``run`` and ``profile`` reports).

        Degradation counters are appended only when any fired, keeping
        fault-free reports byte-identical to earlier versions."""
        summary = self.summary()
        resilience = self.resilience()
        if any(resilience.values()):
            summary.update(resilience)
        width = max(len(name) for name in summary)
        return [f"{name:<{width}} = {value}"
                for name, value in summary.items()]
