"""Precise trap recovery (paper Section 2.2).

When translated code traps, the VM must present exactly the architected
state the V-ISA semantics define at the trapping instruction:

1. the V-PC comes from the fragment's PEI table (indexed by the trapping
   instruction's position, with the fragment's embedded base V-PC);
2. register state is materialised from the GPR file plus — for the basic
   format — the accumulators named in the PEI's recovery map.

The modified format's embedded destination registers make step 2 trivial
(the architected file is always current), which is the paper's motivation
for the modified ISA.
"""

from repro.ildp_isa.opcodes import IFormat
from repro.interp.state import ArchState
from repro.utils.bitops import MASK64


class VMTrap(Exception):
    """A precise V-ISA trap delivered by the co-designed VM."""

    def __init__(self, trap, state):
        super().__init__(f"{trap.kind.value} at V:{state.pc:#x}")
        self.trap = trap          # the underlying isa.semantics.Trap
        self.state = state        # precise ArchState at the trap


class PEIRecoveryError(Exception):
    """A trapping instruction has no PEI table entry (a translator bug).

    Carries the fragment id, the offending body index and the table size
    so the failure is diagnosable from the exception alone.
    """

    def __init__(self, fragment, body_index):
        super().__init__(
            f"no PEI table entry at body index {body_index} of fragment "
            f"f{fragment.fid} (V:{fragment.entry_vpc:#x}, "
            f"{len(fragment.pei_table)} PEI entries)")
        self.fid = fragment.fid
        self.entry_vpc = fragment.entry_vpc
        self.body_index = body_index
        self.table_size = len(fragment.pei_table)


def reconstruct_state(fragment, body_index, regs, accs):
    """Materialise the precise architected state for a trap.

    ``body_index`` is the position of the trapping instruction inside the
    fragment; ``regs`` the GPR file; ``accs`` the accumulators.
    """
    entry = _find_pei(fragment, body_index)
    _index, vpc, recovery = entry
    state = ArchState(vpc)
    state.regs = list(regs)
    if fragment.fmt is IFormat.BASIC and recovery is not None:
        for reg, location in recovery.items():
            if location[0] == "acc":
                state.regs[reg] = accs[location[1]] & MASK64
    state.regs[31] = 0
    return state


def _find_pei(fragment, body_index):
    """O(1) probe of the fragment's install-time PEI index."""
    try:
        return fragment.pei_index[body_index]
    except KeyError:
        raise PEIRecoveryError(fragment, body_index) from None
