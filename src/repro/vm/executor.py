"""Functional execution of translated fragments.

The executor models the co-designed hardware's architectural behaviour:
accumulators, the GPR file (with the modified format's operational/
architected distinction checked in strict mode), the dual-address return
address stack, fragment-to-fragment chaining, the shared dispatch code, and
precise traps.

Control only ever enters a fragment at its entry address — chaining
branches, RAS predictions and dispatch all resolve to fragment entries —
so execution walks fragment bodies by index and follows entry addresses
across fragments without leaving the executor.  It returns to the VM only
when translated code runs out (``call-translator`` or a dispatch miss),
the program halts, or a trap must be delivered.
"""

import enum
import itertools

from repro.ildp_isa.opcodes import IFormat, IOp
from repro.ildp_isa.semantics import IALU_OPS, icond_taken
from repro.isa.semantics import CMOV_CONDITIONS, Trap, TrapKind
from repro.obs.events import EventKind
from repro.obs.telemetry import NULL_TELEMETRY
from repro.utils.bitops import MASK64, sext
from repro.vm.events import TraceRecord

#: Dynamic instruction-count weight per special op in the ALPHA format
#: (embedding a 64-bit address costs an ldah+lda pair on a conventional
#: ISA; the I-ISA has single wide encodings for these).
_ALPHA_WEIGHTS = {
    IOp.LOAD_EMB: 2,
    IOp.SAVE_VRA: 2,
    IOp.CALL_TRANSLATOR: 2,
    IOp.COND_CALL_TRANSLATOR: 2,
}

_MUL_OPS = frozenset({"mull", "mulq", "umulh"})

#: Serial numbers identifying which executor a fragment's compiled closure
#: lists belong to (see ``FragmentExecutor._code_for``).
_EXECUTOR_SERIALS = itertools.count()

#: Lazily bound ``repro.vm.specialize.compile_fragment`` (that module
#: imports this one, so it cannot be imported at the top).
_compile_fragment = None

#: Lazily bound ``repro.vm.jit.compile_fragment_jit`` (same import cycle).
_compile_fragment_jit = None

#: jit code-size histogram buckets (generated source lines per fragment).
_JIT_SIZE_BUCKETS = (8, 16, 32, 64, 128, 256, 512)


class ExitReason(enum.Enum):
    HALT = "halt"
    UNTRANSLATED = "untranslated"   # call-translator or dispatch miss
    TRAP = "trap"
    BUDGET = "budget"               # instruction budget exhausted
    CORRUPT = "corrupt"             # fragment failed entry verification


class ExecResult:
    """How a stint of translated-code execution ended."""

    __slots__ = ("reason", "vpc", "fragment", "body_index", "trap")

    def __init__(self, reason, vpc=None, fragment=None, body_index=None,
                 trap=None):
        self.reason = reason
        self.vpc = vpc                  # V-PC where the VM resumes
        self.fragment = fragment        # fragment active at exit (traps)
        self.body_index = body_index
        self.trap = trap

    def __repr__(self):
        return f"ExecResult({self.reason.value}, vpc={self.vpc})"


class StalenessError(AssertionError):
    """Strict modified-format check: an operationally-stale GPR was read."""


class FragmentExecutor:
    """Executes fragments against shared architected state."""

    def __init__(self, config, tcache, memory, console, stats, trace=None,
                 telemetry=None, verify=False, pal=None):
        self.config = config
        self.tcache = tcache
        self.memory = memory
        self.console = console
        self.stats = stats
        self.trace = trace
        #: the interpreter's :class:`repro.interp.pal.PalContext` — the
        #: SYSCALL iop dispatches through it so translated and
        #: interpreted CALL_PALs share one input cursor and heap break
        self.pal = pal
        #: Checksum-verify fragments at entry and at fragment transitions
        #: (both are synchronisation points with complete architected
        #: state, so bailing out there is always safe).  Off by default;
        #: the fault-free path pays nothing.
        self.verify = verify
        self.accs = [0] * max(config.n_accumulators, 1)
        self.ras = []
        #: modified-format staleness tracking (strict mode)
        self._stale = set()
        #: identity under which fragments cache compiled closures for us
        self._compile_key = next(_EXECUTOR_SERIALS)
        #: body index of the instruction whose tier-2 guard last raised a
        #: trap (set by generated code, read by ``_run_jit`` to build the
        #: precise ``ExecResult``)
        self._jit_pei = None
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        # Telemetry hooks are pre-resolved to None when disabled so the
        # run loops pay a single ``is not None`` test per fragment visit
        # (never per instruction) on the telemetry-off path.
        if self.telemetry.enabled:
            self._prof = self.telemetry.fragments
            self._events = self.telemetry.events
            registry = self.telemetry.registry
            self._entries_counter = registry.counter("exec.fragment_entries")
            self._transfer_counter = registry.counter(
                "exec.fragment_transitions")
            self._jit_promotions = registry.counter("jit.promotions")
            self._jit_deopts = registry.counter("jit.deopts")
            self._jit_compile_failures = registry.counter(
                "jit.compile_failures")
            self._jit_compile_timer = registry.timer("jit.compile")
            self._jit_size_hist = registry.histogram("jit.code_lines",
                                                     _JIT_SIZE_BUCKETS)
        else:
            self._prof = None
            self._events = None
            self._entries_counter = None
            self._transfer_counter = None
            self._jit_promotions = None
            self._jit_deopts = None
            self._jit_compile_failures = None
            self._jit_compile_timer = None
            self._jit_size_hist = None

    # -- register plumbing ---------------------------------------------------

    def _read_gpr(self, regs, index, fmt):
        if (fmt is IFormat.MODIFIED and self.config.strict_modified
                and index in self._stale):
            raise StalenessError(
                f"r{index} read while operationally stale (usage analysis "
                "marked it non-operational)")
        return regs[index]

    def _write_gpr(self, regs, index, value, operational=True):
        if index == 31:
            return
        regs[index] = value & MASK64
        if operational:
            self._stale.discard(index)
        else:
            self._stale.add(index)

    def _operand(self, instr, source, regs, fmt):
        if source == "acc":
            return self.accs[instr.acc]
        if source == "gpr":
            return self._read_gpr(regs, instr.gpr, fmt)
        if source == "gpr2":
            return self._read_gpr(regs, instr.gpr2, fmt)
        if source == "imm":
            return instr.imm
        return 0  # "zero" and None

    # -- main loop -------------------------------------------------------------

    def run(self, fragment, state, max_instructions=None):
        """Execute from ``fragment`` until the VM must take over.

        ``state`` is the shared :class:`~repro.interp.state.ArchState`; its
        register list is the GPR file (operational + architected in one,
        with staleness assertions for the modified format).

        ``VMConfig.exec_engine`` selects how fragment bodies run: the jit
        engine (default) promotes hot fragments to tier-2 generated
        source (see :mod:`repro.vm.jit`) over the specialized engine's
        pre-compiled step closures (:mod:`repro.vm.specialize`); the
        naive engine is the readable per-instruction dispatch below.
        All are observationally identical.
        """
        engine = self.config.exec_engine
        if engine == "jit":
            return self._run_jit(fragment, state, max_instructions)
        if engine == "specialized":
            return self._run_specialized(fragment, state, max_instructions)
        if self.verify and not self._integrity_ok(fragment):
            return ExecResult(ExitReason.CORRUPT, vpc=fragment.entry_vpc,
                              fragment=fragment)
        regs = state.regs
        self._stale.clear()
        frag = fragment
        frag.execution_count += 1
        index = 0
        executed_v = 0
        stats = self.stats
        prof = self._prof
        if prof is not None:
            self._note_entry(frag, stats)

        while True:
            instr = frag.body[index]
            fmt = frag.fmt
            executed_v += instr.v_weight
            stats.count_iinstr(instr, fmt,
                               _ALPHA_WEIGHTS.get(instr.iop, 1)
                               if fmt is IFormat.ALPHA else 1)
            iop = instr.iop

            try:
                outcome = self._execute(instr, iop, frag, index, regs, fmt,
                                        state)
            except Trap as trap:
                trap.vpc = instr.vpc
                if prof is not None:
                    prof.leave(ExitReason.TRAP.value, stats)
                return ExecResult(ExitReason.TRAP, vpc=instr.vpc,
                                  fragment=frag, body_index=index,
                                  trap=trap)
            if outcome is None:
                index += 1
                continue
            kind, value = outcome
            if kind == "goto":
                frag, index = value
                # A fragment transition is a synchronisation point: the
                # redirect gives the machine time to make the architected
                # file visible, so staleness tracking restarts here.  The
                # strict check therefore only catches *intra-fragment*
                # reads of non-operational values, which would be genuine
                # usage-analysis bugs.
                self._stale.clear()
                if self.verify and not self._integrity_ok(frag):
                    state.pc = frag.entry_vpc
                    if prof is not None:
                        prof.leave(ExitReason.CORRUPT.value, stats)
                    return ExecResult(ExitReason.CORRUPT,
                                      vpc=frag.entry_vpc, fragment=frag)
                # Budget checks happen only at fragment boundaries, where
                # the architected state is complete (all live-outs copied).
                if max_instructions is not None and executed_v >= \
                        max_instructions:
                    state.pc = frag.entry_vpc
                    if prof is not None:
                        prof.leave(ExitReason.BUDGET.value, stats)
                    return ExecResult(ExitReason.BUDGET,
                                      vpc=frag.entry_vpc, fragment=frag)
                frag.execution_count += 1
                if prof is not None:
                    self._transfer_counter.inc()
                    prof.switch(frag, stats)
            elif kind == "exit":
                state.pc = value.vpc if value.vpc is not None else state.pc
                if prof is not None:
                    prof.leave(value.reason.value, stats)
                return value
            else:  # pragma: no cover
                raise AssertionError(kind)

    # -- specialized engine ------------------------------------------------------

    def _code_for(self, frag, traced):
        """The fragment's compiled closure list for this executor.

        Compiled code is keyed per executor: closures pre-resolve branch
        targets through *our* translation cache and reflect *our* config,
        and a fragment can be handed to a different executor (tests do
        this after hand-mutating instructions), so a key mismatch simply
        recompiles.  Chaining patches call ``invalidate_compiled``.
        """
        global _compile_fragment
        if frag._compiled_key != self._compile_key:
            frag._compiled_key = self._compile_key
            frag._compiled = [None, None]
        code = frag._compiled[traced]
        if code is None:
            if _compile_fragment is None:
                from repro.vm.specialize import compile_fragment
                _compile_fragment = compile_fragment
            code = _compile_fragment(self, frag, traced)
            frag._compiled[traced] = code
        return code

    def _run_specialized(self, fragment, state, max_instructions=None):
        """The ``run`` loop over pre-compiled step closures.

        Per-instruction statistics live inside the closures; the V-ISA
        budget is charged from the ``source_instructions_executed`` delta,
        which the closures advance exactly as the naive loop's local
        counter would.
        """
        if self.verify and not self._integrity_ok(fragment):
            return ExecResult(ExitReason.CORRUPT, vpc=fragment.entry_vpc,
                              fragment=fragment)
        regs = state.regs
        stats = self.stats
        traced = self.trace is not None
        self._stale.clear()
        frag = fragment
        frag.execution_count += 1
        code = self._code_for(frag, traced)
        index = 0
        start_v = stats.source_instructions_executed
        prof = self._prof
        if prof is not None:
            self._note_entry(frag, stats)

        while True:
            try:
                outcome = code[index](self, regs, state)
            except Trap as trap:
                vpc = frag.body[index].vpc
                trap.vpc = vpc
                if prof is not None:
                    prof.leave(ExitReason.TRAP.value, stats)
                return ExecResult(ExitReason.TRAP, vpc=vpc, fragment=frag,
                                  body_index=index, trap=trap)
            if outcome is None:
                index += 1
                continue
            kind, value = outcome
            if kind == "goto":
                frag, index = value
                # Fragment transitions restart staleness tracking and are
                # the only budget checkpoints — see ``run`` for why.
                self._stale.clear()
                if self.verify and not self._integrity_ok(frag):
                    state.pc = frag.entry_vpc
                    if prof is not None:
                        prof.leave(ExitReason.CORRUPT.value, stats)
                    return ExecResult(ExitReason.CORRUPT,
                                      vpc=frag.entry_vpc, fragment=frag)
                if max_instructions is not None and \
                        stats.source_instructions_executed - start_v >= \
                        max_instructions:
                    state.pc = frag.entry_vpc
                    if prof is not None:
                        prof.leave(ExitReason.BUDGET.value, stats)
                    return ExecResult(ExitReason.BUDGET,
                                      vpc=frag.entry_vpc, fragment=frag)
                frag.execution_count += 1
                if prof is not None:
                    self._transfer_counter.inc()
                    prof.switch(frag, stats)
                code = self._code_for(frag, traced)
            elif kind == "exit":
                state.pc = value.vpc if value.vpc is not None else state.pc
                if prof is not None:
                    prof.leave(value.reason.value, stats)
                return value
            else:  # pragma: no cover
                raise AssertionError(kind)

    # -- jit engine --------------------------------------------------------------

    def _jit_for(self, frag):
        """The fragment's tier-2 function for this executor, or ``None``.

        Mirrors ``_code_for``'s per-executor keying.  A compile failure
        pins the fragment to tier 1 (``_jit_failed``) instead of retrying
        every hot visit; ``Fragment.invalidate_compiled`` clears both the
        code and the pin, so patched bodies get a fresh chance.
        """
        global _compile_fragment_jit
        if frag._jit_key != self._compile_key:
            frag._jit_key = self._compile_key
            frag._jit_code = None
            frag._jit_failed = False
        if frag._jit_failed:
            return None
        if _compile_fragment_jit is None:
            from repro.vm.jit import compile_fragment_jit
            _compile_fragment_jit = compile_fragment_jit
        timer = self._jit_compile_timer
        try:
            if timer is not None:
                with timer.time():
                    fn = _compile_fragment_jit(self, frag)
            else:
                fn = _compile_fragment_jit(self, frag)
        except Exception:
            # degrade, never die: the fragment keeps running on tier-1
            # closures, which are semantically complete
            frag._jit_failed = True
            if self._jit_compile_failures is not None:
                self._jit_compile_failures.inc()
            return None
        frag._jit_code = fn
        if self._jit_promotions is not None:
            self._jit_promotions.inc()
            self._jit_size_hist.observe(fn._jit_lines)
            self._events.emit(EventKind.JIT_PROMOTED, fid=frag.fid,
                              entry_vpc=frag.entry_vpc,
                              lines=fn._jit_lines)
        return fn

    def _run_jit(self, fragment, state, max_instructions=None):
        """The three-tier ``run`` loop: tier-2 code when a fragment is
        hot, tier-1 step closures otherwise.

        Guards deopt cleanly to tier 1: trace-collecting visits never use
        generated code (the trace-on closures stay byte-identical to the
        naive engine), traps surface with the precise body index recorded
        by the generated guard, and entry/transition CRC verification is
        identical to ``_run_specialized``.  Statistics are batched inside
        tier-2 code but exact at every boundary, so the budget check
        below sees the same ``source_instructions_executed`` deltas.
        """
        verify = self.verify
        if verify and not self._integrity_ok(fragment):
            return ExecResult(ExitReason.CORRUPT, vpc=fragment.entry_vpc,
                              fragment=fragment)
        regs = state.regs
        stats = self.stats
        traced = self.trace is not None
        self._stale.clear()
        frag = fragment
        frag.execution_count += 1
        key = self._compile_key
        threshold = self.config.jit_threshold
        start_v = stats.source_instructions_executed
        prof = self._prof
        if prof is not None:
            self._note_entry(frag, stats)

        while True:
            jfn = None
            if not traced:
                if frag._jit_key == key:
                    jfn = frag._jit_code
                if jfn is None and frag.execution_count >= threshold:
                    jfn = self._jit_for(frag)
            if jfn is not None:
                try:
                    outcome = jfn(self, regs, state)
                except Trap as trap:
                    if self._jit_deopts is not None:
                        self._jit_deopts.inc()
                    if prof is not None:
                        prof.leave(ExitReason.TRAP.value, stats)
                    return ExecResult(ExitReason.TRAP, vpc=trap.vpc,
                                      fragment=frag,
                                      body_index=self._jit_pei, trap=trap)
            else:
                code = self._code_for(frag, traced)
                index = 0
                while True:
                    try:
                        outcome = code[index](self, regs, state)
                    except Trap as trap:
                        vpc = frag.body[index].vpc
                        trap.vpc = vpc
                        if prof is not None:
                            prof.leave(ExitReason.TRAP.value, stats)
                        return ExecResult(ExitReason.TRAP, vpc=vpc,
                                          fragment=frag, body_index=index,
                                          trap=trap)
                    if outcome is None:
                        index += 1
                        continue
                    break
            kind, value = outcome
            if kind == "goto":
                frag = value[0]
                # Fragment transitions restart staleness tracking and are
                # the only budget checkpoints — see ``run`` for why.
                self._stale.clear()
                if verify and not self._integrity_ok(frag):
                    state.pc = frag.entry_vpc
                    if prof is not None:
                        prof.leave(ExitReason.CORRUPT.value, stats)
                    return ExecResult(ExitReason.CORRUPT,
                                      vpc=frag.entry_vpc, fragment=frag)
                if max_instructions is not None and \
                        stats.source_instructions_executed - start_v >= \
                        max_instructions:
                    state.pc = frag.entry_vpc
                    if prof is not None:
                        prof.leave(ExitReason.BUDGET.value, stats)
                    return ExecResult(ExitReason.BUDGET,
                                      vpc=frag.entry_vpc, fragment=frag)
                frag.execution_count += 1
                if prof is not None:
                    self._transfer_counter.inc()
                    prof.switch(frag, stats)
            elif kind == "exit":
                state.pc = value.vpc if value.vpc is not None else state.pc
                if prof is not None:
                    prof.leave(value.reason.value, stats)
                return value
            else:  # pragma: no cover
                raise AssertionError(kind)

    def _integrity_ok(self, frag):
        """Checksum-verify a fragment, amortised via ``frag.verified``.

        Unstamped fragments (``checksum is None``) pass trivially; a
        verified fragment is trusted until an in-place patch resets the
        flag.  Returns False exactly when the body no longer matches its
        install-time checksum — i.e. it was corrupted.
        """
        if frag.verified:
            return True
        if frag.checksum is None:
            frag.verified = True
            return True
        if frag.compute_checksum() == frag.checksum:
            frag.verified = True
            return True
        return False

    def _note_entry(self, frag, stats):
        """Telemetry bookkeeping for a VM-level fragment entry."""
        self._entries_counter.inc()
        self._prof.enter(frag, stats)
        self._events.emit(EventKind.FRAGMENT_ENTERED, fid=frag.fid,
                          entry_vpc=frag.entry_vpc)

    # -- single-instruction semantics -------------------------------------------

    def _execute(self, instr, iop, frag, index, regs, fmt, state):
        if iop is IOp.ALU:
            self._do_alu(instr, regs, fmt)
        elif iop is IOp.LOAD:
            self._do_load(instr, regs, fmt)
        elif iop is IOp.STORE:
            self._do_store(instr, regs, fmt)
        elif iop is IOp.COPY_TO_GPR:
            self._trace_simple(instr, "int", dst=instr.gpr, acc=instr.acc,
                               acc_read=True)
            self._write_gpr(regs, instr.gpr, self.accs[instr.acc])
        elif iop is IOp.COPY_FROM_GPR:
            self._trace_simple(instr, "int", srcs=(instr.gpr,),
                               acc=instr.acc)
            self.accs[instr.acc] = self._read_gpr(regs, instr.gpr, fmt)
        elif iop is IOp.BRANCH:
            return self._do_branch(instr, regs, fmt)
        elif iop is IOp.BR:
            self._trace_control(instr, "uncond", True, instr.target)
            return self._transfer(instr.target)
        elif iop is IOp.SET_VPC_BASE:
            self._trace_simple(instr, "int")
        elif iop is IOp.SAVE_VRA:
            self._trace_simple(instr, "int", dst=instr.gpr)
            self._write_gpr(regs, instr.gpr, instr.vtarget)
        elif iop is IOp.PUSH_RAS:
            self._trace_simple(instr, "int")
            self._push_ras(instr)
        elif iop is IOp.RET_RAS:
            return self._do_ret_ras(instr, regs, fmt)
        elif iop is IOp.LOAD_EMB:
            self._trace_simple(instr, "int", acc=instr.acc)
            self.accs[instr.acc] = instr.vtarget
        elif iop is IOp.CALL_TRANSLATOR:
            self._trace_control(instr, "uncond", True, None)
            return ("exit", ExecResult(ExitReason.UNTRANSLATED,
                                       vpc=instr.vtarget))
        elif iop is IOp.COND_CALL_TRANSLATOR:
            value = self._operand(instr, instr.cond_src, regs, fmt)
            taken = icond_taken(instr.op, value)
            self._trace_control(instr, "cond", taken, None,
                                srcs=self._cond_srcs(instr),
                                acc=instr.acc if instr.cond_src == "acc"
                                else None)
            if taken:
                return ("exit", ExecResult(ExitReason.UNTRANSLATED,
                                           vpc=instr.vtarget))
        elif iop is IOp.TO_DISPATCH:
            return self._do_dispatch(instr, regs, fmt)
        elif iop is IOp.HALT:
            self._trace_simple(instr, "int")
            return ("exit", ExecResult(ExitReason.HALT, vpc=instr.vpc))
        elif iop is IOp.PUTC:
            self._trace_simple(instr, "int", srcs=(16,))
            self.console.append(self._read_gpr(regs, 16, fmt) & 0xFF)
        elif iop is IOp.SYSCALL:
            self._trace_simple(instr, "int", srcs=(16,))
            self.pal.call(regs, instr.imm, instr.vpc, translated=True)
        elif iop is IOp.GENTRAP:
            raise Trap(TrapKind.GENTRAP, vpc=instr.vpc)
        else:  # pragma: no cover
            raise AssertionError(f"cannot execute {iop}")
        return None

    # -- computation ------------------------------------------------------------

    def _do_alu(self, instr, regs, fmt):
        op = instr.op
        a = self._operand(instr, instr.src_a, regs, fmt)
        b = self._operand(instr, instr.src_b, regs, fmt)
        is_cmov = fmt is IFormat.ALPHA and op in CMOV_CONDITIONS
        if is_cmov:
            old = regs[instr.dest_gpr] if instr.dest_gpr is not None else 0
            result = b if CMOV_CONDITIONS[op](a) else old
        else:
            result = IALU_OPS[op](a, b)
        if self.trace is not None:
            srcs = self._alu_srcs(instr)
            if is_cmov and instr.dest_gpr is not None:
                srcs += (instr.dest_gpr,)
            self._trace_simple(instr, "mul" if op in _MUL_OPS else "int",
                               srcs=srcs, dst=instr.gpr_dest(fmt),
                               acc=instr.acc, acc_read=instr.src_a == "acc"
                               or instr.src_b == "acc")
        self._commit_result(instr, result, regs, fmt)

    def _commit_result(self, instr, result, regs, fmt):
        if instr.acc is not None:
            self.accs[instr.acc] = result
        if fmt is IFormat.ALPHA:
            if instr.dest_gpr is not None:
                self._write_gpr(regs, instr.dest_gpr, result)
        elif fmt is IFormat.MODIFIED:
            if instr.dest_gpr is not None:
                self._write_gpr(regs, instr.dest_gpr, result,
                                operational=instr.operational)
        # basic format: architected state is maintained by copy-to-GPR

    def _do_load(self, instr, regs, fmt):
        base = self._operand(instr, instr.addr_src, regs, fmt)
        address = (base + instr.imm) & MASK64
        raw = self.memory.load(address, instr.mem_size, vpc=instr.vpc)
        value = sext(raw, 8 * instr.mem_size) if instr.mem_signed else raw
        if self.trace is not None:
            self._trace_simple(instr, "load", srcs=self._addr_srcs(instr),
                               dst=instr.gpr_dest(fmt), acc=instr.acc,
                               acc_read=instr.addr_src == "acc",
                               mem_addr=address)
        self._commit_result(instr, value, regs, fmt)

    def _do_store(self, instr, regs, fmt):
        base = self._operand(instr, instr.addr_src, regs, fmt)
        address = (base + instr.imm) & MASK64
        data = self._operand(instr, instr.data_src, regs, fmt)
        if self.trace is not None:
            self._trace_simple(instr, "store", srcs=self._store_srcs(instr),
                               acc=instr.acc,
                               acc_read=instr.addr_src == "acc"
                               or instr.data_src == "acc", mem_addr=address)
        self.memory.store(address, data & MASK64, instr.mem_size,
                          vpc=instr.vpc)

    # -- control -------------------------------------------------------------------

    def _transfer(self, address):
        frag = self.tcache.fragment_at(address)
        if frag is None:  # pragma: no cover - layout guarantees entries
            raise AssertionError(
                f"control transfer to non-entry address {address:#x}")
        return ("goto", (frag, 0))

    def _do_branch(self, instr, regs, fmt):
        value = self._operand(instr, instr.cond_src, regs, fmt)
        taken = icond_taken(instr.op, value)
        self._trace_control(instr, "cond", taken,
                            instr.target if taken else None,
                            srcs=self._cond_srcs(instr),
                            acc=instr.acc if instr.cond_src == "acc"
                            else None)
        if taken:
            return self._transfer(instr.target)
        return None

    def _push_ras(self, instr):
        self.ras.append((instr.vtarget,
                         instr.target if instr.target is not None
                         else self.tcache.dispatch_address))
        if len(self.ras) > self.config.ras_depth:
            self.ras.pop(0)

    def _do_ret_ras(self, instr, regs, fmt):
        actual = self._read_gpr(regs, instr.gpr, fmt) & ~3 & MASK64
        hit = False
        target = None
        if self.ras:
            v_pred, i_pred = self.ras.pop()
            frag = self.tcache.fragment_at(i_pred)
            if v_pred == actual and frag is not None and \
                    frag.entry_vpc == actual:
                hit = True
                target = i_pred
        self.stats.count_ras(hit)
        self._trace_control(instr, "ret", hit, target,
                            srcs=(instr.gpr,), ras_hit=hit)
        if hit:
            return self._transfer(target)
        return None  # fall through to the TO_DISPATCH that follows

    def _do_dispatch(self, instr, regs, fmt):
        vtarget = self._read_gpr(regs, instr.gpr, fmt) & ~3 & MASK64
        self._trace_control(instr, "uncond", True,
                            self.tcache.dispatch_address,
                            srcs=(instr.gpr,))
        frag = self.tcache.lookup(vtarget)
        self.stats.count_dispatch()
        if self._events is not None:
            self._events.emit(EventKind.DISPATCH_RUN, vtarget=vtarget,
                              hit=frag is not None)
        self._emit_dispatch_trace(frag)
        if frag is None:
            return ("exit", ExecResult(ExitReason.UNTRANSLATED,
                                       vpc=vtarget))
        return ("goto", (frag, 0))

    def _emit_dispatch_trace(self, target_fragment):
        body = self.tcache.dispatch_body
        self.stats.count_dispatch_instructions(len(body))
        if self.trace is None:
            return
        final_target = (target_fragment.entry_address()
                        if target_fragment is not None else None)
        for instr in body:
            if instr.iop is IOp.JMP_DISPATCH:
                self.trace.append(TraceRecord(
                    instr.address, instr.size, "branch", acc=instr.acc,
                    acc_read=True, btype="indirect", taken=True,
                    target=final_target, is_dispatch=True))
            else:
                op_class = "load" if instr.iop is IOp.LOAD else "int"
                self.trace.append(TraceRecord(
                    instr.address, instr.size, op_class, acc=instr.acc,
                    acc_read=True, acc_write=True, is_dispatch=True))

    # -- trace helpers -----------------------------------------------------------

    def _alu_srcs(self, instr):
        srcs = []
        for source in (instr.src_a, instr.src_b):
            if source == "gpr":
                srcs.append(instr.gpr)
            elif source == "gpr2":
                srcs.append(instr.gpr2)
        return tuple(srcs)

    def _addr_srcs(self, instr):
        return (instr.gpr,) if instr.addr_src == "gpr" else ()

    def _store_srcs(self, instr):
        srcs = []
        if instr.addr_src == "gpr":
            srcs.append(instr.gpr)
        if instr.data_src == "gpr":
            srcs.append(instr.gpr)
        elif instr.data_src == "gpr2":
            srcs.append(instr.gpr2)
        return tuple(srcs)

    def _cond_srcs(self, instr):
        return (instr.gpr,) if instr.cond_src == "gpr" else ()

    def _trace_simple(self, instr, op_class, srcs=(), dst=None, acc=None,
                      acc_read=False, mem_addr=None):
        if self.trace is None:
            return
        self.trace.append(TraceRecord(
            instr.address, instr.size, op_class, srcs=srcs, dst=dst,
            acc=acc if acc is not None else instr.acc, acc_read=acc_read,
            acc_write=instr.writes_acc(), strand_start=instr.strand_start,
            mem_addr=mem_addr, v_weight=instr.v_weight))

    def _trace_control(self, instr, btype, taken, target, srcs=(),
                       acc=None, ras_hit=None):
        if self.trace is None:
            return
        self.trace.append(TraceRecord(
            instr.address, instr.size, "branch", srcs=srcs, acc=acc,
            btype=btype, taken=taken, target=target, ras_hit=ras_hit,
            v_weight=instr.v_weight))
