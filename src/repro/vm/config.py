"""Configuration for the co-designed VM."""

from repro.ildp_isa.opcodes import IFormat
from repro.translator.chaining import ChainingPolicy

#: Paper Section 4.1: maximum superblock size 200, hot threshold 50.
DEFAULT_MAX_SUPERBLOCK = 200
DEFAULT_THRESHOLD = 50

#: Fragment visits before the jit engine promotes a body to tier-2
#: generated code (tuned with benchmarks/bench_exec_engine.py: low
#: enough that benchmark loops promote almost immediately, high enough
#: that one-shot fragments never pay a compile).
DEFAULT_JIT_THRESHOLD = 16


class VMConfig:
    """All the knobs of the DBT system and its functional machine.

    Defaults follow the paper's baseline: modified I-ISA, software
    prediction with the dual-address RAS, four logical accumulators, hot
    threshold 50, superblocks of up to 200 instructions.
    """

    def __init__(self, fmt=IFormat.MODIFIED,
                 policy=ChainingPolicy.SW_PRED_RAS,
                 n_accumulators=4,
                 threshold=DEFAULT_THRESHOLD,
                 max_superblock=DEFAULT_MAX_SUPERBLOCK,
                 fuse_memory=False,
                 ras_depth=16,
                 strict_modified=True,
                 collect_trace=False,
                 stop_at_existing_fragment=True,
                 flush_on_phase_change=False,
                 flush_window=5_000,
                 flush_rate_factor=4.0,
                 exec_engine="jit",
                 jit_threshold=DEFAULT_JIT_THRESHOLD,
                 telemetry=False,
                 trace=False,
                 faults=None,
                 fault_seed=0,
                 tcache_capacity_bytes=None,
                 max_host_steps=None,
                 translation_retry_limit=3,
                 flush_storm_window=1_000,
                 verify_fragments=None,
                 persist_path=None,
                 persist_mode="both"):
        if n_accumulators < 1:
            raise ValueError("need at least one accumulator")
        if threshold < 1:
            raise ValueError("hot threshold must be positive")
        if max_superblock < 1:
            raise ValueError("superblock size must be positive")
        if exec_engine not in ("jit", "specialized", "naive"):
            raise ValueError(
                f"unknown exec engine {exec_engine!r} "
                "(expected 'jit', 'specialized' or 'naive')")
        if jit_threshold < 1:
            raise ValueError("jit threshold must be positive")
        if tcache_capacity_bytes is not None and tcache_capacity_bytes < 1:
            raise ValueError("tcache capacity must be positive")
        if max_host_steps is not None and max_host_steps < 1:
            raise ValueError("host step budget must be positive")
        if translation_retry_limit < 1:
            raise ValueError("translation retry limit must be positive")
        if flush_storm_window < 0:
            raise ValueError("flush storm window must be non-negative")
        if persist_mode not in ("load", "save", "both"):
            raise ValueError(
                f"unknown persist mode {persist_mode!r} "
                "(expected 'load', 'save' or 'both')")
        if faults is not None and not isinstance(faults, str):
            # accept a list of spec strings for convenience, normalised
            # to the canonical ";"-joined form so configs stay JSON-able
            faults = ";".join(faults)
        if faults:
            # fail at configuration time, not mid-run: parse eagerly and
            # throw the plan away (the VM builds its own injector)
            from repro.faults.plan import FaultPlan
            FaultPlan.parse(faults, seed=fault_seed)
        else:
            faults = None
        self.fmt = fmt
        self.policy = policy
        self.n_accumulators = n_accumulators
        self.threshold = threshold
        self.max_superblock = max_superblock
        self.fuse_memory = fuse_memory
        self.ras_depth = ras_depth
        #: Assert that the modified format never reads a register whose
        #: operational copy is stale (validates the usage analysis).
        self.strict_modified = strict_modified
        self.collect_trace = collect_trace
        #: End superblock capture when the path reaches translated code.
        self.stop_at_existing_fragment = stop_at_existing_fragment
        #: Dynamo-style phase-change flushing (paper Section 4.1): when the
        #: fragment-creation rate over the last ``flush_window`` V-ISA
        #: instructions jumps by more than ``flush_rate_factor`` over the
        #: previous window's rate, the translation cache is flushed so new
        #: (better) fragments can form.
        self.flush_on_phase_change = flush_on_phase_change
        self.flush_window = flush_window
        self.flush_rate_factor = flush_rate_factor
        #: How the interpreter and fragment executor run instructions:
        #: ``"jit"`` (the default) additionally compiles hot fragments to
        #: generated Python source (:mod:`repro.vm.jit`) on top of the
        #: pre-bound step closures, ``"specialized"`` executes only the
        #: closures built once at decode/translation time, ``"naive"``
        #: re-dispatches each instruction through the reference if/elif
        #: chains.  All engines are observationally identical (the
        #: differential suites assert full ``VMStats`` equality); the
        #: naive engine is kept as the readable reference.
        self.exec_engine = exec_engine
        #: Fragment visit count at which the jit engine promotes a body
        #: to tier-2 generated code.  Purely an internal tiering knob:
        #: it cannot change any architected result or ``VMStats`` field.
        self.jit_threshold = jit_threshold
        #: Enable the :mod:`repro.obs` telemetry subsystem: metrics
        #: registry, structured event stream, phase timers and
        #: hot-fragment profiling.  Off by default — the disabled path is
        #: a shared no-op object, so the hot loops pay nothing.
        self.telemetry = telemetry
        #: Enable span tracing (:mod:`repro.obs.trace`): the VM run loop,
        #: translator phases and tcache lifecycle record a hierarchical
        #: timeline exportable as Chrome trace-event JSON.  Off by
        #: default, with the same no-op-twin cost model as ``telemetry``.
        self.trace = trace
        #: Fault-injection plan (``site@key=value;...`` spec string, see
        #: :mod:`repro.faults`).  ``None`` selects the shared
        #: ``NULL_INJECTOR`` no-op twin, keeping the fault-free paths
        #: bit-identical to a build without fault injection.
        self.faults = faults
        #: Seed for the plan's deterministic probabilistic selectors.
        self.fault_seed = fault_seed
        #: Bound on the translation cache's estimated code size; ``add``
        #: raises ``TCacheFull`` past it, driving flush + retranslate.
        #: ``None`` leaves the cache unbounded (the paper's model).
        self.tcache_capacity_bytes = tcache_capacity_bytes
        #: Fuel watchdog: a hard ceiling on host dispatch steps per run;
        #: crossing it raises ``BudgetExceeded`` carrying partial stats
        #: instead of hanging.  ``None`` disables the watchdog.
        self.max_host_steps = max_host_steps
        #: How many times a failing superblock entry PC is retried before
        #: being blacklisted to interpretation for the rest of the run.
        self.translation_retry_limit = translation_retry_limit
        #: Flush-storm guard: a capacity flush within this many committed
        #: V-ISA instructions of the previous one is suppressed and the
        #: translation treated as a plain failure (backoff) instead.
        self.flush_storm_window = flush_storm_window
        #: Verify fragment body checksums at entry.  ``None`` means
        #: "only when a corruption fault site is planned" — see
        #: :meth:`resolve_verify_fragments`.
        self.verify_fragments = verify_fragments
        #: Root directory of the persistent fragment store
        #: (:mod:`repro.persist`).  ``None`` (the default) disables
        #: persistence entirely — no store, no memo, zero overhead.
        self.persist_path = None if persist_path is None \
            else str(persist_path)
        #: Which half of the store lifecycle runs: ``"load"`` warm-starts
        #: from an existing store only, ``"save"`` records this run's
        #: translations only, ``"both"`` (the default) does both.
        self.persist_mode = persist_mode

    def resolve_verify_fragments(self):
        """Whether the executor should checksum-verify fragments.

        Explicit ``True``/``False`` wins; the ``None`` default enables
        verification exactly when the fault plan can corrupt fragments,
        so fault-free runs never pay for checksums.
        """
        if self.verify_fragments is not None:
            return self.verify_fragments
        if not self.faults:
            return False
        from repro.faults.plan import FaultPlan, FaultSite
        plan = FaultPlan.parse(self.faults, seed=self.fault_seed)
        return FaultSite.CORRUPT in plan.sites()

    def copy(self, **overrides):
        """A copy of this config with keyword overrides applied."""
        fields = self.to_dict()
        fields["fmt"] = self.fmt
        fields["policy"] = self.policy
        fields.update(overrides)
        return VMConfig(**fields)

    def to_dict(self):
        """All fields as JSON-able primitives (enums become their values)."""
        return dict(
            fmt=self.fmt.value, policy=self.policy.value,
            n_accumulators=self.n_accumulators, threshold=self.threshold,
            max_superblock=self.max_superblock, fuse_memory=self.fuse_memory,
            ras_depth=self.ras_depth, strict_modified=self.strict_modified,
            collect_trace=self.collect_trace,
            stop_at_existing_fragment=self.stop_at_existing_fragment,
            flush_on_phase_change=self.flush_on_phase_change,
            flush_window=self.flush_window,
            flush_rate_factor=self.flush_rate_factor,
            exec_engine=self.exec_engine,
            jit_threshold=self.jit_threshold,
            telemetry=self.telemetry,
            trace=self.trace,
            faults=self.faults,
            fault_seed=self.fault_seed,
            tcache_capacity_bytes=self.tcache_capacity_bytes,
            max_host_steps=self.max_host_steps,
            translation_retry_limit=self.translation_retry_limit,
            flush_storm_window=self.flush_storm_window,
            verify_fragments=self.verify_fragments,
            persist_path=self.persist_path,
            persist_mode=self.persist_mode)

    def key_fields(self):
        """The fields that identify a run for result caching.

        ``collect_trace`` is excluded: trace collection is observational
        and cannot change the architected run or any derived metric.
        ``exec_engine`` is excluded for the same reason: all engines
        produce bit-identical results, so cached summaries are shared.
        ``jit_threshold`` rides on that exclusion — promotion timing is
        engine-internal, and reconstructed cache points always run the
        default threshold, so cached summaries stay coherent.
        ``telemetry`` likewise: the no-op-parity tests assert that
        telemetry on/off produces identical ``VMStats``.  ``trace`` (span
        tracing) is observational wall-clock data and excluded for the
        same reason.

        ``faults``, ``fault_seed`` and ``verify_fragments`` are excluded
        by design: fault-injected runs must never pollute (or be served
        from) the result cache, so harness run points are always
        reconstructed fault-free and the chaos suites drive the VM
        directly.  The degradation *knobs* (``tcache_capacity_bytes``,
        ``max_host_steps``, retry/storm limits) stay in the key — they
        change flush counts and other cached metrics.

        ``persist_path``/``persist_mode`` are excluded because warm
        start is observational: the translation memo replays the exact
        fragment and cost accounting the cold pipeline would produce
        (the warm-differential suite asserts ``vars(VMStats)``
        equality), so persisted and cold runs share cached summaries.
        This exclusion is also what the store key itself relies on —
        it hashes ``key_fields()``, which must not include the store's
        own location.
        """
        fields = self.to_dict()
        del fields["collect_trace"]
        del fields["exec_engine"]
        del fields["jit_threshold"]
        del fields["telemetry"]
        del fields["trace"]
        del fields["faults"]
        del fields["fault_seed"]
        del fields["verify_fragments"]
        del fields["persist_path"]
        del fields["persist_mode"]
        return fields

    @classmethod
    def from_dict(cls, fields):
        """Rebuild a config from :meth:`to_dict` output."""
        fields = dict(fields)
        fields["fmt"] = IFormat(fields["fmt"])
        fields["policy"] = ChainingPolicy(fields["policy"])
        return cls(**fields)

    def __repr__(self):
        return (f"VMConfig({self.fmt.value}, {self.policy.value}, "
                f"accs={self.n_accumulators}, thr={self.threshold})")
