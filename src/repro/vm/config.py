"""Configuration for the co-designed VM."""

from repro.ildp_isa.opcodes import IFormat
from repro.translator.chaining import ChainingPolicy

#: Paper Section 4.1: maximum superblock size 200, hot threshold 50.
DEFAULT_MAX_SUPERBLOCK = 200
DEFAULT_THRESHOLD = 50


class VMConfig:
    """All the knobs of the DBT system and its functional machine.

    Defaults follow the paper's baseline: modified I-ISA, software
    prediction with the dual-address RAS, four logical accumulators, hot
    threshold 50, superblocks of up to 200 instructions.
    """

    def __init__(self, fmt=IFormat.MODIFIED,
                 policy=ChainingPolicy.SW_PRED_RAS,
                 n_accumulators=4,
                 threshold=DEFAULT_THRESHOLD,
                 max_superblock=DEFAULT_MAX_SUPERBLOCK,
                 fuse_memory=False,
                 ras_depth=16,
                 strict_modified=True,
                 collect_trace=False,
                 stop_at_existing_fragment=True,
                 flush_on_phase_change=False,
                 flush_window=5_000,
                 flush_rate_factor=4.0,
                 exec_engine="specialized",
                 telemetry=False,
                 trace=False):
        if n_accumulators < 1:
            raise ValueError("need at least one accumulator")
        if threshold < 1:
            raise ValueError("hot threshold must be positive")
        if max_superblock < 1:
            raise ValueError("superblock size must be positive")
        if exec_engine not in ("specialized", "naive"):
            raise ValueError(
                f"unknown exec engine {exec_engine!r} "
                "(expected 'specialized' or 'naive')")
        self.fmt = fmt
        self.policy = policy
        self.n_accumulators = n_accumulators
        self.threshold = threshold
        self.max_superblock = max_superblock
        self.fuse_memory = fuse_memory
        self.ras_depth = ras_depth
        #: Assert that the modified format never reads a register whose
        #: operational copy is stale (validates the usage analysis).
        self.strict_modified = strict_modified
        self.collect_trace = collect_trace
        #: End superblock capture when the path reaches translated code.
        self.stop_at_existing_fragment = stop_at_existing_fragment
        #: Dynamo-style phase-change flushing (paper Section 4.1): when the
        #: fragment-creation rate over the last ``flush_window`` V-ISA
        #: instructions jumps by more than ``flush_rate_factor`` over the
        #: previous window's rate, the translation cache is flushed so new
        #: (better) fragments can form.
        self.flush_on_phase_change = flush_on_phase_change
        self.flush_window = flush_window
        self.flush_rate_factor = flush_rate_factor
        #: How the interpreter and fragment executor run instructions:
        #: ``"specialized"`` executes pre-bound closures built once at
        #: decode/translation time, ``"naive"`` re-dispatches each
        #: instruction through the reference if/elif chains.  Both engines
        #: are observationally identical (the differential suite asserts
        #: it); the naive engine is kept as the readable reference.
        self.exec_engine = exec_engine
        #: Enable the :mod:`repro.obs` telemetry subsystem: metrics
        #: registry, structured event stream, phase timers and
        #: hot-fragment profiling.  Off by default — the disabled path is
        #: a shared no-op object, so the hot loops pay nothing.
        self.telemetry = telemetry
        #: Enable span tracing (:mod:`repro.obs.trace`): the VM run loop,
        #: translator phases and tcache lifecycle record a hierarchical
        #: timeline exportable as Chrome trace-event JSON.  Off by
        #: default, with the same no-op-twin cost model as ``telemetry``.
        self.trace = trace

    def copy(self, **overrides):
        """A copy of this config with keyword overrides applied."""
        fields = self.to_dict()
        fields["fmt"] = self.fmt
        fields["policy"] = self.policy
        fields.update(overrides)
        return VMConfig(**fields)

    def to_dict(self):
        """All fields as JSON-able primitives (enums become their values)."""
        return dict(
            fmt=self.fmt.value, policy=self.policy.value,
            n_accumulators=self.n_accumulators, threshold=self.threshold,
            max_superblock=self.max_superblock, fuse_memory=self.fuse_memory,
            ras_depth=self.ras_depth, strict_modified=self.strict_modified,
            collect_trace=self.collect_trace,
            stop_at_existing_fragment=self.stop_at_existing_fragment,
            flush_on_phase_change=self.flush_on_phase_change,
            flush_window=self.flush_window,
            flush_rate_factor=self.flush_rate_factor,
            exec_engine=self.exec_engine,
            telemetry=self.telemetry,
            trace=self.trace)

    def key_fields(self):
        """The fields that identify a run for result caching.

        ``collect_trace`` is excluded: trace collection is observational
        and cannot change the architected run or any derived metric.
        ``exec_engine`` is excluded for the same reason: both engines
        produce bit-identical results, so cached summaries are shared.
        ``telemetry`` likewise: the no-op-parity tests assert that
        telemetry on/off produces identical ``VMStats``.  ``trace`` (span
        tracing) is observational wall-clock data and excluded for the
        same reason.
        """
        fields = self.to_dict()
        del fields["collect_trace"]
        del fields["exec_engine"]
        del fields["telemetry"]
        del fields["trace"]
        return fields

    @classmethod
    def from_dict(cls, fields):
        """Rebuild a config from :meth:`to_dict` output."""
        fields = dict(fields)
        fields["fmt"] = IFormat(fields["fmt"])
        fields["policy"] = ChainingPolicy(fields["policy"])
        return cls(**fields)

    def __repr__(self):
        return (f"VMConfig({self.fmt.value}, {self.policy.value}, "
                f"accs={self.n_accumulators}, thr={self.threshold})")
