"""Committed-instruction trace records.

The functional executor (and, for the "original" configuration, the
interpreter) emits one record per committed instruction.  The trace-driven
timing models in :mod:`repro.uarch` consume these records; nothing in the
functional path depends on them.

Dependence is expressed with GPR indices (0..31, 31 reads as zero and is
never a destination) plus the accumulator/strand number for steering in the
ILDP machine.
"""


class TraceRecord:
    """One committed instruction."""

    __slots__ = (
        "address",      # fetch address (tcache for I-code, V-PC for Alpha)
        "size",         # encoded bytes (I-cache modelling)
        "op_class",     # "int" | "mul" | "load" | "store" | "branch" | "nop"
        "srcs",         # tuple of GPR indices read
        "dst",          # GPR written, or None
        "acc",          # accumulator/strand id, or None
        "acc_read",     # True when the accumulator's old value is a source
        "acc_write",    # True when the instruction writes its accumulator
        "strand_start",  # True for the first instruction of a strand
        "btype",        # None|"cond"|"uncond"|"call"|"ret"|"indirect"
        "taken",        # branch outcome
        "target",       # actual next fetch address when taken
        "ras_hit",      # dual-address RAS outcome for RET_RAS, else None
        "mem_addr",     # effective address for loads/stores, else None
        "v_weight",     # V-ISA instructions this record accounts for (0/1)
        "is_dispatch",  # True for shared-dispatch-code instructions
    )

    def __init__(self, address, size, op_class, srcs=(), dst=None, acc=None,
                 acc_read=False, acc_write=False, strand_start=False,
                 btype=None, taken=False, target=None, ras_hit=None,
                 mem_addr=None, v_weight=0, is_dispatch=False):
        self.address = address
        self.size = size
        self.op_class = op_class
        self.srcs = srcs
        self.dst = dst
        self.acc = acc
        self.acc_read = acc_read
        self.acc_write = acc_write
        self.strand_start = strand_start
        self.btype = btype
        self.taken = taken
        self.target = target
        self.ras_hit = ras_hit
        self.mem_addr = mem_addr
        self.v_weight = v_weight
        self.is_dispatch = is_dispatch

    def is_control(self):
        return self.btype is not None

    def __repr__(self):
        return (f"TraceRecord({self.address:#x}, {self.op_class}, "
                f"btype={self.btype}, v={self.v_weight})")
