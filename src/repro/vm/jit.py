"""Tier-2 JIT: lower hot fragments to straight-line Python source.

The closure-specialized engine (:mod:`repro.vm.specialize`) still pays a
Python call, three statistics increments and an outcome check for every
executed I-ISA instruction.  This module removes all of that for hot
fragments: the whole body is emitted as *one* generated Python function —
operands pre-resolved to ``regs[i]``/``_accs[i]`` index expressions, ALU
semantics inlined where an expression reproduces the :data:`IALU_OPS`
formula exactly (everything else calls the very same table function),
branch targets pre-resolved to shared ``("goto", (fragment, 0))``
outcomes, and the per-instruction statistics *batched*: the deltas are
compile-time constants, so one flush of four attribute additions replaces
dozens of per-step increments.

The generated function has the signature ``fn(ex, regs, state)`` and
returns the same outcome protocol as a tier-1 step closure: ``("goto",
(fragment, 0))`` for an intra-cache transfer or ``("exit", ExecResult)``
(never ``None`` — control cannot fall off a laid-out fragment).

Exactness guarantees (the engine-differential suites assert full
``vars(VMStats)`` equality against the tier-1 engines):

* statistics are flushed before every point tier 1 could observe them —
  conditional and unconditional exits, the RAS/dispatch helpers (which
  call ``stats.count_ras``/``count_dispatch``), and trap raises;
* each potentially-excepting instruction (LOAD/STORE) sits in its own
  ``try/except Trap`` whose *cold* handler performs the catch-up flush
  (including the trapping instruction), records the body index for
  precise-state reconstruction, and re-raises — the hot path pays
  nothing (CPython 3.11 zero-cost exceptions);
* the strict modified-format staleness check is *simulated at compile
  time*: control only enters fragments at index 0 and bodies are
  straight-line, so the stale set at each instruction is static.  A
  simulated violation compiles to the same :class:`StalenessError` raise
  tier 1 would perform at run time; valid fragments carry no tracking
  code at all.

Deoptimisation back to tier 1 is handled by the caller
(``FragmentExecutor._run_jit``): trace-on visits never use tier-2 code,
traps surface as precise ``ExecResult`` records, and chaining patches,
corruption recovery and cache flushes drop compiled functions through
``Fragment.invalidate_compiled`` exactly like the tier-1 closures.
"""

from repro.ildp_isa.opcodes import IFormat, IOp
from repro.ildp_isa.semantics import IALU_OPS
from repro.isa.semantics import CMOV_CONDITIONS, Trap, TrapKind
from repro.memory.image import PAGE_MASK, PAGE_SHIFT
from repro.utils.bitops import MASK64, sext
from repro.vm.executor import _ALPHA_WEIGHTS, ExecResult, ExitReason, \
    StalenessError
from repro.vm.specialize import _resolve_goto

_ZERO_REG = 31

#: ALU mnemonics emitted as inline expressions.  Each template must
#: reproduce the :data:`IALU_OPS` formula *exactly* (including its
#: masking behaviour on out-of-range operands — accumulators may hold
#: 65-bit cmov1 temporaries).  ``masked`` marks results guaranteed to be
#: < 2**64 already, letting GPR commits skip a redundant ``& MASK64``.
_INLINE_OPS = {
    "addq": ("(({a}) + ({b})) & MASK64", True),
    "subq": ("(({a}) - ({b})) & MASK64", True),
    "s4addq": ("(4 * ({a}) + ({b})) & MASK64", True),
    "s4subq": ("(4 * ({a}) - ({b})) & MASK64", True),
    "s8addq": ("(8 * ({a}) + ({b})) & MASK64", True),
    "s8subq": ("(8 * ({a}) - ({b})) & MASK64", True),
    "cmpeq": ("1 if ({a}) == ({b}) else 0", True),
    "cmpult": ("1 if ({a}) < ({b}) else 0", True),
    "cmpule": ("1 if ({a}) <= ({b}) else 0", True),
    "and": ("({a}) & ({b})", False),
    "bis": ("({a}) | ({b})", False),
    "xor": ("({a}) ^ ({b})", False),
    "bic": ("({a}) & ~({b}) & MASK64", True),
    "ornot": ("(({a}) | (~({b}) & MASK64)) & MASK64", True),
    "eqv": ("(({a}) ^ (~({b}) & MASK64)) & MASK64", True),
    "sll": ("(({a}) << (({b}) & 0x3F)) & MASK64", True),
    "srl": ("({a}) >> (({b}) & 0x3F)", False),
    "mulq": ("(({a}) * ({b})) & MASK64", True),
    "umulh": ("(({a}) * ({b})) >> 64", False),
}

#: Branch predicates over ``_c``, an already-masked unsigned 64-bit value
#: (``to_signed(c) < 0`` is exactly ``c >> 63`` on masked values).
_BRANCH_EXPRS = {
    "beq": "_c == 0",
    "bne": "_c != 0",
    "blt": "_c >> 63",
    "bge": "not (_c >> 63)",
    "ble": "_c >> 63 or _c == 0",
    "bgt": "not (_c >> 63 or _c == 0)",
    "blbc": "not (_c & 1)",
    "blbs": "_c & 1",
}

_STALE_MESSAGE = ("r{index} read while operationally stale (usage "
                  "analysis marked it non-operational)")


class _Stale(Exception):
    """Compile-time signal: this instruction reads a stale register."""

    def __init__(self, index):
        super().__init__(index)
        self.index = index


class _Emitter:
    """Builds the source text and exec namespace for one fragment."""

    def __init__(self, ex, fragment):
        self.ex = ex
        self.fragment = fragment
        self.fmt = fragment.fmt
        self.alpha = self.fmt is IFormat.ALPHA
        self.track = (self.fmt is IFormat.MODIFIED
                      and ex.config.strict_modified)
        self.fname = f"_jit_f{fragment.fid}"
        self.lines = []
        self.ns = {
            "MASK64": MASK64,
            "_Trap": Trap,
            "_TK_GENTRAP": TrapKind.GENTRAP,
            "_StalenessError": StalenessError,
            "_sext": sext,
        }
        #: compile-time simulation of the strict modified-format stale set
        self.stale = set()
        # pending statistics deltas (flushed before observation points)
        self.pending_weight = 0
        self.pending_v = 0
        self.pending_copies = 0
        self.pending_iops = {}
        self.done = False

    # -- low-level helpers ---------------------------------------------------

    def emit(self, text, depth=1):
        self.lines.append("    " * depth + text)

    def bind(self, name, value):
        self.ns[name] = value
        return name

    def charge(self, instr):
        """Accumulate one instruction's statistics into the pending batch."""
        weight = _ALPHA_WEIGHTS.get(instr.iop, 1) if self.alpha else 1
        self.pending_weight += weight
        self.pending_iops[instr.iop] = \
            self.pending_iops.get(instr.iop, 0) + 1
        if instr.is_copy():
            self.pending_copies += 1
        self.pending_v += instr.v_weight

    def flush(self, depth=1, reset=True):
        """Emit the pending statistics increments.

        ``reset=False`` is the PEI except-handler variant: the handler
        re-raises, so the hot path's later flush must still cover the
        same instructions.
        """
        if self.pending_weight:
            self.emit(f"_stats.iinstructions_executed += "
                      f"{self.pending_weight}", depth)
        for iop, count in self.pending_iops.items():
            name = self.bind(f"_k_{iop.name}", iop)
            self.emit(f"_iops[{name}] += {count}", depth)
        if self.pending_copies:
            self.emit(f"_stats.copies_executed += {self.pending_copies}",
                      depth)
        if self.pending_v:
            self.emit(f"_stats.source_instructions_executed += "
                      f"{self.pending_v}", depth)
        if reset:
            self.pending_weight = 0
            self.pending_v = 0
            self.pending_copies = 0
            self.pending_iops = {}

    def check_gpr(self, index):
        """Compile-time equivalent of the runtime staleness assertion."""
        if self.track and index in self.stale:
            raise _Stale(index)

    def operand(self, instr, source):
        """Operand expression plus whether its value is already < 2**64."""
        if source == "acc":
            return f"_accs[{instr.acc}]", False
        if source == "gpr":
            self.check_gpr(instr.gpr)
            return f"regs[{instr.gpr}]", True
        if source == "gpr2":
            self.check_gpr(instr.gpr2)
            return f"regs[{instr.gpr2}]", True
        if source == "imm":
            return repr(instr.imm), 0 <= instr.imm <= MASK64
        return "0", True  # "zero" and None

    def address_expr(self, instr):
        base, masked = self.operand(instr, instr.addr_src)
        if instr.imm == 0:
            return base if masked else f"({base}) & MASK64"
        return f"(({base}) + {instr.imm!r}) & MASK64"

    def _dest_gpr(self, instr):
        dest = instr.dest_gpr if self.fmt is not IFormat.BASIC else None
        return None if dest == _ZERO_REG else dest

    def commit(self, instr, expr, masked, simple=False):
        """Emit the acc-then-GPR result commit (mirrors ``_commit_fn``)."""
        acc = instr.acc
        dest = self._dest_gpr(instr)
        if acc is None and dest is None:
            return  # result unobservable (operands are pure reads)
        if dest is None:
            self.emit(f"_accs[{acc}] = {expr}")
        else:
            gexpr = expr if masked else f"({expr}) & MASK64"
            if acc is None:
                self.emit(f"regs[{dest}] = {gexpr}")
            elif simple:
                self.emit(f"_accs[{acc}] = {expr}")
                self.emit(f"regs[{dest}] = {gexpr}")
            else:
                self.emit(f"_r = {expr}")
                self.emit(f"_accs[{acc}] = _r")
                self.emit("regs[{0}] = _r{1}".format(
                    dest, "" if masked else " & MASK64"))
            if self.track:
                operational = True if self.alpha else instr.operational
                if operational:
                    self.stale.discard(dest)
                else:
                    self.stale.add(dest)

    def pei_handler(self, index):
        """The cold catch-up path for a potentially-excepting instruction."""
        self.emit("except _Trap:")
        self.flush(depth=2, reset=False)
        self.emit(f"ex._jit_pei = {index}", 2)
        self.emit("raise", 2)

    def cond_value(self, instr):
        """Emit ``_c = <masked condition operand>``."""
        expr, masked = self.operand(instr, instr.cond_src)
        self.emit(f"_c = {expr}" if masked
                  else f"_c = ({expr}) & MASK64")

    # -- per-IOp emission ----------------------------------------------------

    def emit_instr(self, index, instr):
        iop = instr.iop
        if iop is IOp.ALU:
            self._emit_alu(instr)
        elif iop is IOp.LOAD:
            self._emit_load(index, instr)
        elif iop is IOp.STORE:
            self._emit_store(index, instr)
        elif iop is IOp.COPY_TO_GPR:
            if instr.gpr != _ZERO_REG:
                self.emit(f"regs[{instr.gpr}] = "
                          f"_accs[{instr.acc}] & MASK64")
                if self.track:
                    self.stale.discard(instr.gpr)
        elif iop is IOp.COPY_FROM_GPR:
            self.check_gpr(instr.gpr)
            self.emit(f"_accs[{instr.acc}] = regs[{instr.gpr}]")
        elif iop is IOp.BRANCH:
            goto = self.bind(f"_g{index}",
                             _resolve_goto(self.ex.tcache, instr.target))
            self.check_gpr_source(instr)
            self.flush()
            self.cond_value(instr)
            self.emit(f"if {_BRANCH_EXPRS[instr.op]}:")
            self.emit(f"return {goto}", 2)
        elif iop is IOp.BR:
            goto = self.bind(f"_g{index}",
                             _resolve_goto(self.ex.tcache, instr.target))
            self.flush()
            self.emit(f"return {goto}")
            self.done = True
        elif iop is IOp.SET_VPC_BASE:
            pass  # statistics only
        elif iop is IOp.SAVE_VRA:
            if instr.gpr != _ZERO_REG:
                self.emit(f"regs[{instr.gpr}] = "
                          f"{instr.vtarget & MASK64!r}")
                if self.track:
                    self.stale.discard(instr.gpr)
        elif iop is IOp.PUSH_RAS:
            target = instr.target if instr.target is not None \
                else self.ex.tcache.dispatch_address
            self.emit(f"_ras.append(({instr.vtarget!r}, {target!r}))")
            self.emit(f"if len(_ras) > {self.ex.config.ras_depth}:")
            self.emit("_ras.pop(0)", 2)
        elif iop is IOp.RET_RAS:
            # Inlined ``_do_ret_ras`` fast path: trace is always off in
            # tier-2 code, so the helper reduces to pop-compare-count.
            self.check_gpr(instr.gpr)
            self.bind("_frag_at", self.ex.tcache.fragment_at)
            self.bind("_count_ras", self.ex.stats.count_ras)
            self.flush()
            self.emit(f"_c = regs[{instr.gpr}] & 0xFFFFFFFFFFFFFFFC")
            self.emit("if _ras:")
            self.emit("_vp, _ip = _ras.pop()", 2)
            self.emit("_f = _frag_at(_ip)", 2)
            self.emit("if _vp == _c and _f is not None "
                      "and _f.entry_vpc == _c:", 2)
            self.emit("_count_ras(True)", 3)
            self.emit('return ("goto", (_f, 0))', 3)
            self.emit("_count_ras(False)")
        elif iop is IOp.LOAD_EMB:
            self.emit(f"_accs[{instr.acc}] = {instr.vtarget!r}")
        elif iop is IOp.CALL_TRANSLATOR:
            exit_ = self.bind(f"_x{index}", (
                "exit", ExecResult(ExitReason.UNTRANSLATED,
                                   vpc=instr.vtarget)))
            self.flush()
            self.emit(f"return {exit_}")
            self.done = True
        elif iop is IOp.COND_CALL_TRANSLATOR:
            exit_ = self.bind(f"_x{index}", (
                "exit", ExecResult(ExitReason.UNTRANSLATED,
                                   vpc=instr.vtarget)))
            self.check_gpr_source(instr)
            self.flush()
            self.cond_value(instr)
            self.emit(f"if {_BRANCH_EXPRS[instr.op]}:")
            self.emit(f"return {exit_}", 2)
        elif iop is IOp.TO_DISPATCH:
            self.check_gpr(instr.gpr)
            ref = self.bind(f"_i{index}", instr)
            self.bind("_FMT", self.fmt)
            self.flush()
            self.emit(f"return ex._do_dispatch({ref}, regs, _FMT)")
            self.done = True
        elif iop is IOp.HALT:
            exit_ = self.bind(f"_x{index}", (
                "exit", ExecResult(ExitReason.HALT, vpc=instr.vpc)))
            self.flush()
            self.emit(f"return {exit_}")
            self.done = True
        elif iop is IOp.PUTC:
            self.check_gpr(16)
            self.emit("_con.append(regs[16] & 0xFF)")
        elif iop is IOp.SYSCALL:
            # PAL syscalls read/write architected GPRs directly through
            # the shared PalContext (every tier does); a protect call
            # that invalidates fragments raises the internal RETRANSLATE
            # trap, so the call sits under a PEI handler like any load.
            pal = self.bind("_pal", self.ex.pal.call)
            self.emit("try:")
            self.emit(f"{pal}(regs, {instr.imm!r}, {instr.vpc!r}, True)", 2)
            self.pei_handler(index)
        elif iop is IOp.GENTRAP:
            self.flush()
            self.emit(f"ex._jit_pei = {index}")
            self.emit(f"raise _Trap(_TK_GENTRAP, {instr.vpc!r})")
            self.done = True
        else:
            raise NotImplementedError(f"cannot jit {iop}")

    def check_gpr_source(self, instr):
        """Staleness check for a branch/cond-call condition operand."""
        if instr.cond_src == "gpr":
            self.check_gpr(instr.gpr)
        elif instr.cond_src == "gpr2":
            self.check_gpr(instr.gpr2)

    def _emit_alu(self, instr):
        op = instr.op
        a, _ = self.operand(instr, instr.src_a)
        b, _ = self.operand(instr, instr.src_b)
        if self.alpha and op in CMOV_CONDITIONS:
            cond = self.bind(f"_cmov_{op}", CMOV_CONDITIONS[op])
            old = (f"regs[{instr.dest_gpr}]"
                   if instr.dest_gpr is not None else "0")
            self.commit(instr, f"({b}) if {cond}({a}) else {old}", False)
            return
        inline = _INLINE_OPS.get(op)
        if inline is not None:
            template, masked = inline
            self.commit(instr, template.format(a=a, b=b), masked)
        else:
            fn = self.bind(f"_op_{op}", IALU_OPS[op])
            self.commit(instr, f"{fn}({a}, {b})", False)

    def _emit_alignment_check(self, instr, size):
        """Inline misalignment raise, identical payload to ``Memory``."""
        if size > 1:
            self.bind("_TK_UNALIGNED", TrapKind.UNALIGNED)
            self.emit(f"if _a & {size - 1}:", 2)
            self.emit(f"raise _Trap(_TK_UNALIGNED, {instr.vpc!r}, _a)", 3)

    def _emit_load(self, index, instr):
        """Inline load via the MMU read fast-path dict.

        ``Memory._read_ok`` maps every page index that is mapped *and*
        readable to its page buffer (maintained eagerly by
        ``map_segment``/``protect``), so a hit can go straight to the
        bytes; a miss always faults and delegates to ``Memory.load``,
        whose slow path raises the identical precise
        ACCESS_VIOLATION/PROTECTION_VIOLATION trap.  The dict itself is
        never reassigned (only mutated), so binding its ``.get`` at
        compile time is safe across protection changes.  A
        naturally-aligned access can never straddle a page (``size``
        divides ``PAGE_SIZE``), so the cross-page slow path is
        statically dead here.
        """
        size = instr.mem_size
        self.bind("_rdget", self.ex.memory._read_ok.get)
        self.bind("_mld", self.ex.memory.load)
        self.emit("try:")
        self.emit(f"_a = {self.address_expr(instr)}", 2)
        self._emit_alignment_check(instr, size)
        self.emit(f"_p = _rdget(_a >> {PAGE_SHIFT})", 2)
        self.emit("if _p is None:", 2)
        self.emit(f"_r = _mld(_a, {size}, {instr.vpc!r})", 3)
        self.emit("else:", 2)
        self.emit(f"_o = _a & {PAGE_MASK}", 3)
        if size == 1:
            self.emit("_r = _p[_o]", 3)
        else:
            self.bind("_from_bytes", int.from_bytes)
            self.emit(f"_r = _from_bytes(_p[_o:_o + {size}], "
                      f"\"little\")", 3)
        self.pei_handler(index)
        if instr.mem_signed:
            self.emit(f"_r = _sext(_r, {8 * size})")
        # memory values (and their sign extensions) are < 2**64 already
        self.commit(instr, "_r", True, simple=True)

    def _emit_store(self, index, instr):
        """Inline store via the MMU write fast-path dict.

        ``Memory._write_ok`` holds only pages that are mapped, writable,
        already dirty and *unwatched*: a miss is not necessarily a fault
        — it may be the first store to a clean page (installs the entry)
        or a store to a code page carrying fragments (fires the SMC
        hook, which can raise the internal RETRANSLATE trap).
        ``Memory.store`` handles all of those plus the genuine faults,
        so misses delegate to it wholesale.
        """
        size = instr.mem_size
        data, masked = self.operand(instr, instr.data_src)
        # Memory.store keeps the low ``size`` bytes; for 8-byte stores
        # that is MASK64, which ``masked`` operands already satisfy.
        mask = (1 << (8 * size)) - 1
        dexpr = data if masked and size == 8 else f"({data}) & {mask:#x}"
        self.bind("_wrget", self.ex.memory._write_ok.get)
        self.bind("_mst", self.ex.memory.store)
        self.emit("try:")
        self.emit(f"_a = {self.address_expr(instr)}", 2)
        self._emit_alignment_check(instr, size)
        self.emit(f"_p = _wrget(_a >> {PAGE_SHIFT})", 2)
        self.emit("if _p is None:", 2)
        self.emit(f"_mst(_a, {dexpr}, {size}, {instr.vpc!r})", 3)
        self.emit("else:", 2)
        self.emit(f"_o = _a & {PAGE_MASK}", 3)
        if size == 1:
            self.emit(f"_p[_o] = {dexpr}", 3)
        else:
            self.emit(f"_p[_o:_o + {size}] = ({dexpr}).to_bytes("
                      f"{size}, \"little\")", 3)
        self.pei_handler(index)

    # -- assembly ------------------------------------------------------------

    def build(self):
        for index, instr in enumerate(self.fragment.body):
            if self.done:
                break  # unreachable tail after an unconditional exit
            self.charge(instr)
            try:
                self.emit_instr(index, instr)
            except _Stale as stale:
                # tier 1 counts the instruction, then the operand getter
                # raises; straight-line bodies make this a static fact
                self.flush()
                self.emit("raise _StalenessError("
                          f"{_STALE_MESSAGE.format(index=stale.index)!r})")
                self.done = True
        if not self.done:
            # control fell off the body: tier 1 indexes past the closure
            # list; raise the identical error with the stats caught up
            self.flush()
            self.emit('raise IndexError("list index out of range")')

        body = "\n".join(self.lines)
        hoists = []
        for name, expr in (("_stats", "ex.stats"),
                           ("_accs", "ex.accs"),
                           ("_con", "ex.console"),
                           ("_ras", "ex.ras")):
            if name in body:
                hoists.append(f"    {name} = {expr}")
        if "_iops" in body:
            hoists.append("    _iops = _stats.iop_counts")
        header = f"def {self.fname}(ex, regs, state):"
        return "\n".join([header] + hoists + [body, ""])


#: Source text -> compiled code object, shared process-wide (the
#: :data:`repro.interp.interpreter.DECODE_CACHE` idiom).  The source is a
#: pure function of the body semantics — executor-specific values enter
#: through the exec namespace, never the code — so repeated runs of the
#: same program (benchmark repetitions, differential reruns, harness
#: workers) skip the ``compile()`` call, which dominates tier-2 compile
#: cost.  Keying by content also makes staleness impossible: a patched
#: body emits different source, hence a different key.
_CODE_CACHE = {}


def compile_fragment_jit(ex, fragment):
    """Compile ``fragment.body`` into one Python function for ``ex``.

    Must be called after layout (addresses and ``v_weight`` assigned) and
    re-run — via ``Fragment.invalidate_compiled`` — whenever a chaining
    patch or corruption recovery rewrites the body.  The returned
    function carries its generated source on ``_jit_source`` (docs and
    tests introspect it) and its line count on ``_jit_lines``.
    """
    emitter = _Emitter(ex, fragment)
    source = emitter.build()
    code = _CODE_CACHE.get(source)
    if code is None:
        code = compile(source,
                       f"<jit f{fragment.fid} @{fragment.entry_vpc:#x}>",
                       "exec")
        _CODE_CACHE[source] = code
    namespace = emitter.ns
    exec(code, namespace)
    fn = namespace[emitter.fname]
    fn._jit_source = source
    fn._jit_lines = len(emitter.lines)
    return fn
