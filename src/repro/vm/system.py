"""The top-level co-designed VM (Fig. 1).

``CoDesignedVM.run()`` switches between three modes exactly as the paper's
simulation methodology describes (Section 4.1):

* **interpret** V-ISA instructions, maintaining MRET hotness counters;
* when a trace-start candidate becomes hot, **capture** the interpreted
  path as a superblock and **translate** it into the translation cache;
* when control reaches a translated fragment's entry, **execute** the
  translated code directly, returning to interpretation when a
  ``call-translator`` exit or dispatch miss leads outside translated code.
"""

from time import perf_counter

from repro.faults.inject import make_injector
from repro.faults.plan import FaultSite
from repro.interp.interpreter import Halted, Interpreter
from repro.interp.profiler import CandidateKind, HotnessProfiler
from repro.isa.opcodes import Kind
from repro.isa.semantics import Trap, TrapKind
from repro.memory.image import PROT_EXEC
from repro.obs.events import EventKind
from repro.obs.telemetry import make_telemetry
from repro.obs.trace import make_tracer
from repro.tcache.cache import TCacheFull, TranslationCache
from repro.translator.cost import TranslationCostModel
from repro.translator.pipeline import TranslationError, Translator
from repro.translator.superblock import (
    EndReason,
    Superblock,
    SuperblockEntry,
    elided_by_translation,
)
from repro.vm.config import VMConfig
from repro.vm.executor import ExitReason, FragmentExecutor
from repro.vm.stats import VMStats
from repro.vm.traps import VMTrap, reconstruct_state


class BudgetExceeded(Exception):
    """The host-step fuel watchdog tripped (``VMConfig.max_host_steps``).

    A clean bound on runaway executions: raised from the run loop at a
    dispatch boundary (complete architected state), carrying the partial
    :class:`VMStats` so callers can report how far the run got.
    """

    def __init__(self, host_steps, stats):
        super().__init__(
            f"host step budget of {host_steps} exhausted")
        self.host_steps = host_steps
        self.stats = stats


class CoDesignedVM:
    """A complete DBT virtual machine for one loaded program."""

    def __init__(self, program, config=None):
        self.program = program
        self.config = config if config is not None else VMConfig()
        self.telemetry = make_telemetry(self.config)
        self.tracer = make_tracer(self.config)
        self.injector = make_injector(self.config, telemetry=self.telemetry,
                                      tracer=self.tracer)
        verify = self.config.resolve_verify_fragments()
        self.interpreter = Interpreter(
            program, exec_engine=self.config.exec_engine)
        self.state = self.interpreter.state
        self.profiler = HotnessProfiler(self.config.threshold)
        self.tcache = TranslationCache(
            telemetry=self.telemetry, tracer=self.tracer,
            capacity_bytes=self.config.tcache_capacity_bytes,
            injector=self.injector, verify=verify)
        self.cost_model = TranslationCostModel()
        if self.config.persist_path is not None:
            from repro.persist.session import PersistSession
            self.persist = PersistSession(
                program, self.config, telemetry=self.telemetry,
                injector=self.injector)
            memo = self.persist.memo
        else:
            self.persist = None
            memo = None
        self.translator = Translator(
            self.tcache, fmt=self.config.fmt, policy=self.config.policy,
            n_accumulators=self.config.n_accumulators,
            fuse_memory=self.config.fuse_memory,
            cost_model=self.cost_model, telemetry=self.telemetry,
            tracer=self.tracer, injector=self.injector, memo=memo)
        self.stats = VMStats()
        self.trace = [] if self.config.collect_trace else None
        self.executor = FragmentExecutor(
            self.config, self.tcache, program.memory,
            self.interpreter.console, self.stats, trace=self.trace,
            telemetry=self.telemetry, verify=verify,
            pal=self.interpreter.pal)
        # hostile-guest wiring: watch guest stores for self-modifying
        # code, and let protect calls invalidate stale translations
        self.tcache.attach_memory(program.memory)
        self.tcache._smc_callback = self._on_smc
        self.interpreter.pal.on_protect = self._on_protect
        #: True while the fragment executor is running — an invalidation
        #: then must deopt the current stint (see ``_on_smc``)
        self._in_translated = False
        self.halted = False
        self._flush_window_start = 0
        self._flush_window_fragments = 0
        self._previous_flush_rate = None
        #: V-PC -> consecutive translation failures (retry accounting)
        self._translation_failures = {}
        #: committed-instruction clock of the last capacity flush, for
        #: the flush-storm guard
        self._last_capacity_flush = None

    # -- public API -----------------------------------------------------------

    def persist_save(self):
        """Write this run's fresh translations back to the fragment
        store (no-op without ``VMConfig.persist_path``; best-effort,
        never raises — see :mod:`repro.persist`)."""
        if self.persist is not None:
            self.persist.save()

    def run(self, max_v_instructions=1_000_000):
        """Run until halt, trap, or the V-ISA instruction budget is spent.

        Returns the :class:`VMStats`.  Precise traps surface as
        :class:`VMTrap` with the reconstructed architected state attached.
        When ``VMConfig.max_host_steps`` is set, the fuel watchdog raises
        :class:`BudgetExceeded` (with partial stats) once the loop has
        taken that many dispatch steps.
        """
        if self.telemetry.enabled or self.tracer.enabled:
            return self._run_observed(max_v_instructions)
        stats = self.stats
        state = self.state
        max_host_steps = self.config.max_host_steps
        host_steps = 0
        while not self.halted:
            if max_host_steps is not None:
                host_steps += 1
                if host_steps > max_host_steps:
                    raise BudgetExceeded(max_host_steps, stats)
            remaining = max_v_instructions - stats.total_v_instructions()
            if remaining <= 0:
                break
            fragment = self.tcache.lookup(state.pc)
            if fragment is not None:
                self._execute_translated(fragment, remaining)
                continue
            if self.profiler.record_execution(state.pc):
                self._capture_and_translate(state.pc)
                continue
            self._interpret_one()
        return stats

    def _run_observed(self, max_v_instructions):
        """The ``run`` loop with wall-clock phase attribution and spans.

        A separate copy of the loop so the observability-off path above
        stays untouched.  One ``perf_counter`` call per iteration:
        consecutive timestamps are chained, charging each gap to the
        phase that just ran.  The per-phase totals accumulate in locals
        and hit the registry once, on exit.  ``finalize`` runs even when
        the program traps, so partial runs still report consistent
        telemetry.

        When tracing is on, the same loop opens spans: one ``vm.run``
        root, a ``vm.translated`` span per translated-code stint, a
        ``vm.capture`` span per superblock capture+translation (the
        translator's phase spans nest inside it), and consecutive
        interpreter steps coalesced into one ``vm.interpret`` span — a
        per-V-instruction span would swamp the trace.  With tracing off
        the tracer is the shared no-op twin, so the extra calls are dead.
        """
        stats = self.stats
        state = self.state
        profiler = self.profiler
        tcache = self.tcache
        tracer = self.tracer
        translated_s = capture_s = interp_s = 0.0
        translated_n = capture_n = interp_n = 0
        interp_open = 0     # V-instructions in the open vm.interpret span
        max_host_steps = self.config.max_host_steps
        host_steps = 0
        tracer.begin("vm.run", budget=max_v_instructions)
        try:
            last = perf_counter()
            while not self.halted:
                if max_host_steps is not None:
                    host_steps += 1
                    if host_steps > max_host_steps:
                        raise BudgetExceeded(max_host_steps, stats)
                remaining = max_v_instructions - \
                    stats.total_v_instructions()
                if remaining <= 0:
                    break
                fragment = tcache.lookup(state.pc)
                if fragment is not None:
                    if interp_open:
                        tracer.end(instructions=interp_open)
                        interp_open = 0
                    tracer.begin("vm.translated", fid=fragment.fid,
                                 entry_vpc=fragment.entry_vpc)
                    self._execute_translated(fragment, remaining)
                    tracer.end()
                    now = perf_counter()
                    translated_s += now - last
                    translated_n += 1
                    last = now
                    continue
                if profiler.record_execution(state.pc):
                    if interp_open:
                        tracer.end(instructions=interp_open)
                        interp_open = 0
                    tracer.begin("vm.capture", start_vpc=state.pc)
                    self._capture_and_translate(state.pc)
                    tracer.end()
                    now = perf_counter()
                    capture_s += now - last
                    capture_n += 1
                    last = now
                    continue
                if not interp_open:
                    tracer.begin("vm.interpret")
                self._interpret_one()
                interp_open += 1
                now = perf_counter()
                interp_s += now - last
                interp_n += 1
                last = now
        finally:
            if interp_open:
                tracer.end(instructions=interp_open)
            # a trap can leave a stint span open; close it and vm.run
            tracer.unwind()
            registry = self.telemetry.registry
            registry.timer("phase.vm.translated").add(translated_s,
                                                      translated_n)
            registry.timer("phase.vm.capture").add(capture_s, capture_n)
            registry.timer("phase.vm.interpret").add(interp_s, interp_n)
            self.telemetry.finalize(stats, tcache, self.interpreter)
        return stats

    def console_text(self):
        return self.interpreter.console_text()

    # -- translated-code execution ------------------------------------------------

    def _execute_translated(self, fragment, budget):
        self._in_translated = True
        try:
            result = self.executor.run(fragment, self.state,
                                       max_instructions=budget)
        finally:
            self._in_translated = False
        if result.reason is ExitReason.HALT:
            self.halted = True
        elif result.reason is ExitReason.UNTRANSLATED:
            self.profiler.note_candidate(result.vpc,
                                         CandidateKind.FRAGMENT_EXIT)
        elif result.reason is ExitReason.TRAP:
            if result.trap.kind is TrapKind.RETRANSLATE:
                self._deopt_after(result)
                return
            precise = reconstruct_state(result.fragment, result.body_index,
                                        self.state.regs,
                                        self.executor.accs)
            self.stats.traps_delivered += 1
            self.telemetry.events.emit(
                EventKind.TRAP_DELIVERED, trap_kind=result.trap.kind.value,
                vpc=result.vpc, source="translated")
            raise VMTrap(result.trap, precise)
        elif result.reason is ExitReason.BUDGET:
            # state.pc points at a fragment entry with complete state; the
            # outer loop's budget check terminates the run
            pass
        elif result.reason is ExitReason.CORRUPT:
            self._recover_corrupt(result.fragment)

    def _deopt_after(self, result):
        """Resume interpretation after an invalidation mid-fragment.

        The internal RETRANSLATE pseudo-trap (never guest-visible) fires
        when translated execution invalidates fragments — a
        self-modifying store hitting watched code, or a ``protect`` call
        dropping execute permission.  The triggering instruction
        *completed* (the store wrote, the PAL call returned), so the
        precise architected state is the PEI recovery state advanced
        past it; the currently executing fragment may itself be stale
        (or flushed), so the stint is always abandoned and the outer
        loop re-enters through lookup/translate with fresh code.
        """
        precise = reconstruct_state(result.fragment, result.body_index,
                                    self.state.regs, self.executor.accs)
        if result.trap.access == "pal":
            # the PAL call wrote R0 directly into the live file after
            # its operands were read; a basic-format recovery map
            # predates that write and must not clobber it
            precise.regs[0] = self.state.regs[0]
        self.state.regs[:] = precise.regs
        self.state.pc = precise.pc + 4
        self.stats.retranslate_deopts += 1
        self.tracer.instant("vm.retranslate_deopt", cat="vm",
                            vpc=result.trap.vpc,
                            origin=result.trap.access)

    def _on_smc(self, vpc, invalidated, flushed):
        """Translation-cache callback: a guest store hit translated code.

        Mirrors the cache's counters into :class:`VMStats` (so the
        engine-differential suites assert them) and, when the store ran
        inside translated code, abandons the stint via RETRANSLATE — the
        store itself has already completed in guest memory.
        """
        self.stats.smc_detected += 1
        self.stats.smc_invalidations += invalidated
        if flushed:
            self.stats.tcache_flushes += 1
        if self._in_translated:
            raise Trap(TrapKind.RETRANSLATE, vpc=vpc, access="write")

    def _on_protect(self, base, size, prot, vpc):
        """PAL hook: the guest changed page protections.

        Dropping execute permission invalidates every fragment
        translated from the range — the guest revoked the code those
        translations came from, and the interpreter's exec-checked fetch
        must be the one to (precisely) fault if control returns there.
        The ``protect`` fault site forces the invalidation spuriously,
        which is behaviour-neutral: victims simply retranslate.
        """
        spurious = self.injector.fire(FaultSite.PROTECT, vpc=vpc)
        if (prot & PROT_EXEC) and not spurious:
            return 0
        invalidated, flushed = self.tcache.invalidate_range(base, size)
        if invalidated:
            self.stats.protect_invalidations += invalidated
            if flushed:
                self.stats.tcache_flushes += 1
        return invalidated

    def _recover_corrupt(self, fragment):
        """Graceful recovery from a failed fragment integrity check.

        The corrupt fragment is removed (or the cache flushed when other
        fragments branch into it); control is already at its entry V-PC
        with complete architected state, so the outer loop falls back to
        interpretation and the hotness machinery retranslates the path
        on its own schedule.
        """
        self.stats.corrupt_fragments_detected += 1
        self.telemetry.events.emit(
            EventKind.FRAGMENT_CORRUPTED, fid=fragment.fid,
            entry_vpc=fragment.entry_vpc)
        self.tracer.instant("vm.fragment_corrupted", cat="vm",
                            fid=fragment.fid,
                            entry_vpc=fragment.entry_vpc)
        if self.tcache.invalidate_fragment(fragment) == "flushed":
            self.stats.tcache_flushes += 1

    # -- interpretation -------------------------------------------------------------

    def _interpret_one(self):
        try:
            event = self.interpreter.step()
        except Halted:
            self.halted = True
            return
        except Trap as trap:
            self.stats.traps_delivered += 1
            self.telemetry.events.emit(
                EventKind.TRAP_DELIVERED, trap_kind=trap.kind.value,
                vpc=trap.vpc, source="interpreter")
            raise VMTrap(trap, self.state.copy()) from trap
        self.stats.interpreted_instructions += 1
        if elided_by_translation(event.instr):
            self.stats.interpreted_elided += 1
        self._profile(event)

    def _profile(self, event):
        instr = event.instr
        if instr.kind is Kind.JUMP:
            self.profiler.note_candidate(event.next_pc,
                                         CandidateKind.INDIRECT_TARGET)
        elif instr.kind is Kind.COND_BRANCH and event.taken and \
                event.next_pc <= event.pc:
            self.profiler.note_candidate(
                event.next_pc, CandidateKind.BACKWARD_BRANCH_TARGET)

    # -- superblock capture -----------------------------------------------------------

    def _capture_and_translate(self, start_vpc):
        entries = []
        visited = set()
        end_reason = None
        continuation = None
        max_size = self.config.max_superblock

        memory = self.program.memory

        while True:
            vpc = self.state.pc
            try:
                # record the raw word *before* the step: a store may
                # rewrite its own instruction, and the captured entry
                # must describe the word that actually executed (the
                # pre-fetch raises exactly the trap the step would)
                word = memory.fetch(vpc, vpc=vpc)
                event = self.interpreter.step()
            except Halted:
                # include the halt instruction itself and end the block
                instr = self.interpreter.fetch(vpc)
                entries.append(SuperblockEntry(vpc, instr, False, vpc + 4,
                                               word=word))
                end_reason = EndReason.TRAP_INSTRUCTION
                self.halted = True
                break
            except Trap as trap:
                self.stats.traps_delivered += 1
                self.telemetry.events.emit(
                    EventKind.TRAP_DELIVERED, trap_kind=trap.kind.value,
                    vpc=trap.vpc, source="capture")
                raise VMTrap(trap, self.state.copy()) from trap
            self.stats.interpreted_instructions += 1
            if elided_by_translation(event.instr):
                self.stats.interpreted_elided += 1
            entries.append(SuperblockEntry(event.pc, event.instr,
                                           event.taken, event.next_pc,
                                           word=word))
            visited.add(event.pc)
            kind = event.instr.kind

            if kind is Kind.JUMP:
                end_reason = EndReason.INDIRECT_JUMP
                break
            if kind is Kind.PAL:
                end_reason = EndReason.TRAP_INSTRUCTION
                continuation = event.next_pc
                break
            if kind is Kind.COND_BRANCH and event.taken and \
                    event.next_pc <= event.pc:
                end_reason = EndReason.BACKWARD_TAKEN_BRANCH
                continuation = event.pc + 4
                break
            if len(entries) >= max_size:
                end_reason = EndReason.MAX_SIZE
                continuation = event.next_pc
                break
            if event.next_pc in visited:
                end_reason = EndReason.CYCLE
                continuation = event.next_pc
                break
            if self.config.stop_at_existing_fragment and \
                    self.tcache.lookup(event.next_pc) is not None:
                end_reason = EndReason.EXISTING_FRAGMENT
                continuation = event.next_pc
                break

        superblock = Superblock(start_vpc, entries, end_reason, continuation)
        self.telemetry.events.emit(
            EventKind.SUPERBLOCK_CAPTURED, start_vpc=start_vpc,
            entries=len(entries), end_reason=end_reason.value)
        self._translate_superblock(superblock, start_vpc)

    def _translate_superblock(self, superblock, start_vpc):
        """Translate a captured superblock, degrading gracefully.

        A :class:`TranslationError` discards the superblock — the
        interpreted path already executed, so architected state is
        untouched — and backs off (eventually blacklisting) the entry
        PC.  A :class:`TCacheFull` flushes the cache and retries once,
        unless the flush-storm guard vetoes the flush, in which case the
        translation is treated as a plain failure.

        A superblock whose recorded words no longer match guest memory is
        discarded outright: a store *during* capture rewrote code that
        was already recorded (the page is only write-watched once a
        fragment is installed), so translating it would bake stale
        semantics.  The entry stays hot, and the next visit recaptures
        the rewritten code.
        """
        if self._capture_is_stale(superblock):
            self.stats.stale_captures_discarded += 1
            self.telemetry.events.emit(
                EventKind.TRANSLATION_FAILED, vpc=start_vpc,
                failures=0, reason="stale capture (self-modified)")
            return
        try:
            result = self.translator.translate(superblock)
        except TranslationError as exc:
            self._note_translation_failure(start_vpc, exc.reason)
            return
        except TCacheFull:
            if not self._flush_for_capacity():
                self._note_translation_failure(
                    start_vpc, "tcache full, flush suppressed (storm)")
                return
            try:
                result = self.translator.translate(superblock)
            except TranslationError as exc:
                self._note_translation_failure(start_vpc, exc.reason)
                return
            except TCacheFull:
                # still full after flushing: the fragment alone exceeds
                # capacity (or injection struck again) — interpret
                self._note_translation_failure(
                    start_vpc, "tcache full after flush")
                return
        self.stats.note_translation(result)
        self.profiler.reset(start_vpc)
        if self.config.flush_on_phase_change:
            self._maybe_flush()

    def _capture_is_stale(self, superblock):
        """Whether any recorded word was rewritten since it was captured."""
        read = self.program.memory.read_bytes
        for entry in superblock.entries:
            if entry.word is None:
                continue
            if int.from_bytes(read(entry.vpc, 4), "little") != entry.word:
                return True
        return False

    def _flush_for_capacity(self):
        """Flush for a capacity miss unless the storm guard vetoes it.

        Two capacity flushes within ``flush_storm_window`` committed
        V-ISA instructions indicate thrashing (e.g. a working set larger
        than the cache); the second flush is suppressed so the VM backs
        off to interpretation instead of flushing in a tight loop.
        """
        now = self.stats.total_v_instructions()
        last = self._last_capacity_flush
        if last is not None and \
                now - last < self.config.flush_storm_window:
            self.stats.flush_storms_suppressed += 1
            return False
        self.tcache.flush()
        self.stats.tcache_flushes += 1
        self.stats.tcache_capacity_flushes += 1
        self._last_capacity_flush = now
        return True

    def _note_translation_failure(self, vpc, reason):
        """Retry accounting for a failed translation of ``vpc``.

        Below ``translation_retry_limit`` failures the PC's hotness
        counter is reset with a doubled threshold (visit-count backoff);
        at the limit the PC is blacklisted and interpreted for the rest
        of the run.  Either way the run continues correctly — the
        superblock's instructions were interpreted during capture.
        """
        self.stats.translation_failures += 1
        failures = self._translation_failures.get(vpc, 0) + 1
        self._translation_failures[vpc] = failures
        self.telemetry.events.emit(
            EventKind.TRANSLATION_FAILED, vpc=vpc, failures=failures,
            reason=reason)
        self.tracer.instant("vm.translation_failed", cat="vm", vpc=vpc,
                            failures=failures)
        if failures >= self.config.translation_retry_limit:
            self.profiler.blacklist(vpc)
            self.stats.translation_pcs_blacklisted += 1
            self.telemetry.events.emit(EventKind.PC_BLACKLISTED, vpc=vpc,
                                       failures=failures)
            self.tracer.instant("vm.pc_blacklisted", cat="vm", vpc=vpc)
        else:
            self.profiler.backoff(vpc)

    def _maybe_flush(self):
        """Dynamo-style phase-change detection (paper Section 4.1): an
        abrupt increase of the fragment generation rate flushes the cache,
        evicting stale fragments and allowing new formation."""
        config = self.config
        self._flush_window_fragments += 1
        now = self.stats.total_v_instructions()
        elapsed = now - self._flush_window_start
        if elapsed < config.flush_window:
            return
        rate = self._flush_window_fragments / max(elapsed, 1)
        previous = self._previous_flush_rate
        if previous is not None and previous > 0 and \
                rate > config.flush_rate_factor * previous:
            self.tcache.flush()
            self.stats.tcache_flushes += 1
        self._previous_flush_rate = rate
        self._flush_window_start = now
        self._flush_window_fragments = 0
