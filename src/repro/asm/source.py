"""Line-level parsing of assembly source into statements.

The grammar is deliberately small:

* ``label:`` possibly followed by a statement on the same line
* ``mnemonic operand, operand, ...``
* ``.directive args``
* comments start with ``;`` or ``#`` and run to end of line
"""

import re


class AsmSyntaxError(ValueError):
    """Raised for malformed assembly source."""

    def __init__(self, message, lineno):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


class Label:
    """A label definition."""

    __slots__ = ("name", "lineno")

    def __init__(self, name, lineno):
        self.name = name
        self.lineno = lineno


class Directive:
    """An assembler directive such as ``.data`` or ``.quad``."""

    __slots__ = ("name", "args", "lineno")

    def __init__(self, name, args, lineno):
        self.name = name
        self.args = args
        self.lineno = lineno


class Statement:
    """An instruction statement: mnemonic plus raw operand strings."""

    __slots__ = ("mnemonic", "operands", "lineno")

    def __init__(self, mnemonic, operands, lineno):
        self.mnemonic = mnemonic
        self.operands = operands
        self.lineno = lineno


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_STRING_ARG_RE = re.compile(r'^"((?:[^"\\]|\\.)*)"$')


def _strip_comment(line):
    quote = False
    for index, char in enumerate(line):
        if char == '"':
            quote = not quote
        elif char in ";#" and not quote:
            return line[:index]
    return line


def _split_operands(text):
    """Split an operand list on commas, honouring quoted strings."""
    parts = []
    current = []
    quote = False
    for char in text:
        if char == '"':
            quote = not quote
            current.append(char)
        elif char == "," and not quote:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_source(source):
    """Parse assembly text into a list of Label/Directive/Statement objects."""
    items = []
    for lineno, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        while line:
            match = _LABEL_RE.match(line)
            if match:
                items.append(Label(match.group(1), lineno))
                line = line[match.end():].strip()
                continue
            break
        if not line:
            continue
        fields = line.split(None, 1)
        head = fields[0].lower()
        rest = fields[1] if len(fields) > 1 else ""
        operands = _split_operands(rest)
        if head.startswith("."):
            items.append(Directive(head, operands, lineno))
        else:
            items.append(Statement(head, operands, lineno))
    return items


def parse_string_literal(arg, lineno):
    """Decode a quoted ``.ascii`` argument, handling simple escapes."""
    match = _STRING_ARG_RE.match(arg)
    if not match:
        raise AsmSyntaxError(f"expected string literal, got {arg!r}", lineno)
    body = match.group(1)
    out = []
    index = 0
    escapes = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", '"': '"'}
    while index < len(body):
        char = body[index]
        if char == "\\" and index + 1 < len(body):
            out.append(escapes.get(body[index + 1], body[index + 1]))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)
