"""Pseudo-instruction expansion.

Pseudos keep workload sources readable while producing only real Alpha
instructions.  Every expansion has a size that is known from the operand
*shapes* alone, so the two-pass assembler can lay out code before symbols
are resolved.

Supported pseudos::

    mov  rA, rB        -> bis rA, rA, rB
    li   rA, imm       -> bis/lda/ldah+lda depending on magnitude
    la   rA, symbol    -> ldah+lda pair computing the symbol's address
    clr  rA            -> bis r31, r31, rA
    nop                -> bis r31, r31, r31
    negq rA, rB        -> subq r31, rA, rB
    negl rA, rB        -> subl r31, rA, rB
    not  rA, rB        -> ornot r31, rA, rB
    ret                -> ret r31, (r26)
"""

from repro.utils.bitops import fits_signed

#: Pseudos whose expansion is a fixed number of instructions.
_FIXED_SIZES = {
    "mov": 1,
    "clr": 1,
    "nop": 1,
    "negq": 1,
    "negl": 1,
    "not": 1,
    "la": 2,
}

PSEUDO_MNEMONICS = frozenset(list(_FIXED_SIZES) + ["li"])


def is_pseudo(mnemonic, operands):
    """True when the statement is a pseudo needing expansion.

    ``ret`` with no operands is also normalised here (it is a real
    instruction, but the bare form needs default registers filled in).
    """
    if mnemonic in PSEUDO_MNEMONICS:
        return True
    return mnemonic in ("ret", "br", "bsr", "jmp", "jsr") and _needs_defaults(
        mnemonic, operands)


def _needs_defaults(mnemonic, operands):
    if mnemonic == "ret":
        return len(operands) == 0
    if mnemonic in ("br", "bsr"):
        return len(operands) == 1
    if mnemonic in ("jmp", "jsr"):
        return len(operands) == 1
    return False


def _li_size(value):
    if 0 <= value <= 255:
        return 1
    if fits_signed(value, 16):
        return 1
    if fits_signed(value, 32):
        return 2
    raise ValueError(f"li immediate out of 32-bit range: {value}")


def expansion_size(mnemonic, operands, parse_int):
    """Number of real instructions the statement expands to.

    ``parse_int`` converts a numeric operand text to an int (the assembler
    supplies its own literal parser); it must not consult the symbol table,
    because sizes are computed in pass 1.
    """
    if mnemonic in _FIXED_SIZES:
        return _FIXED_SIZES[mnemonic]
    if mnemonic == "li":
        return _li_size(parse_int(operands[1]))
    return 1


def expand(mnemonic, operands, parse_int):
    """Expand to a list of (mnemonic, operands) real-instruction statements.

    ``la`` expands with symbolic hi/lo markers (``%hi`` / ``%lo``) that the
    assembler's pass 2 resolves against the symbol table.
    """
    if mnemonic == "mov":
        src, dst = operands
        return [("bis", [src, src, dst])]
    if mnemonic == "clr":
        return [("bis", ["r31", "r31", operands[0]])]
    if mnemonic == "nop":
        return [("bis", ["r31", "r31", "r31"])]
    if mnemonic == "negq":
        src, dst = operands
        return [("subq", ["r31", src, dst])]
    if mnemonic == "negl":
        src, dst = operands
        return [("subl", ["r31", src, dst])]
    if mnemonic == "not":
        src, dst = operands
        return [("ornot", ["r31", src, dst])]
    if mnemonic == "la":
        dst, symbol = operands
        return [
            ("ldah", [dst, f"%hi({symbol})(r31)"]),
            ("lda", [dst, f"%lo({symbol})({dst})"]),
        ]
    if mnemonic == "li":
        dst, text = operands
        value = parse_int(text)
        if 0 <= value <= 255:
            return [("bis", ["r31", str(value), dst])]
        if fits_signed(value, 16):
            return [("lda", [dst, f"{value}(r31)"])]
        high = (value + 0x8000) >> 16
        low = value - (high << 16)
        return [
            ("ldah", [dst, f"{high}(r31)"]),
            ("lda", [dst, f"{low}({dst})"]),
        ]
    if mnemonic == "ret":
        return [("ret", ["r31", "(r26)"])]
    if mnemonic == "br":
        return [("br", ["r31", operands[0]])]
    if mnemonic == "bsr":
        return [("bsr", ["r26", operands[0]])]
    if mnemonic == "jmp":
        return [("jmp", ["r31", operands[0]])]
    if mnemonic == "jsr":
        return [("jsr", ["r26", operands[0]])]
    raise KeyError(f"not a pseudo: {mnemonic}")
