"""Two-pass assembler driver: text -> :class:`~repro.memory.image.Program`.

Pass 1 expands pseudos, lays out sections and records label addresses.
Pass 2 resolves symbols, encodes instructions to 32-bit words and writes the
final bytes into a sparse :class:`~repro.memory.image.Memory`.
"""

import re

from repro.asm.pseudo import expand, expansion_size, is_pseudo, PSEUDO_MNEMONICS
from repro.asm.source import (
    AsmSyntaxError,
    Directive,
    Label,
    Statement,
    parse_source,
    parse_string_literal,
)
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    BRANCH_OPS,
    JUMP_OPS,
    MEMORY_OPS,
    OPERATE_OPS,
    PAL_FUNCTIONS,
    RB_ONLY_OPS,
)
from repro.isa.registers import parse_reg
from repro.memory.image import Memory, Program

#: Default section layout; workloads are far smaller than these gaps.
DEFAULT_TEXT_BASE = 0x1_0000
DEFAULT_DATA_BASE = 0x8_0000
DEFAULT_STACK_BASE = 0x20_0000
DEFAULT_STACK_SIZE = 0x1_0000


class AsmError(ValueError):
    """Raised for semantic assembly errors (bad operands, unknown symbols)."""

    def __init__(self, message, lineno=None):
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)


_INT_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")
_MEM_RE = re.compile(r"^(?P<disp>.*?)\((?P<base>[^()]+)\)$")
_HILO_RE = re.compile(r"^%(?P<which>hi|lo)\((?P<symbol>[\w.$]+)\)$")


def _parse_int(text):
    text = text.strip()
    if not _INT_RE.match(text):
        raise ValueError(f"not an integer literal: {text!r}")
    return int(text, 0)


def _is_int(text):
    return bool(_INT_RE.match(text.strip()))


class _Item:
    """A pass-1 layout item awaiting pass-2 resolution."""

    __slots__ = ("address", "kind", "payload", "lineno")

    def __init__(self, address, kind, payload, lineno):
        self.address = address
        self.kind = kind          # "instr" | "data"
        self.payload = payload
        self.lineno = lineno


class Assembler:
    """Assembles one source file; use the :func:`assemble` convenience API."""

    def __init__(self, text_base=DEFAULT_TEXT_BASE,
                 data_base=DEFAULT_DATA_BASE,
                 stack_base=DEFAULT_STACK_BASE,
                 stack_size=DEFAULT_STACK_SIZE):
        self.text_base = text_base
        self.data_base = data_base
        self.stack_base = stack_base
        self.stack_size = stack_size
        self.symbols = {}
        self._items = []
        self._counters = {"text": text_base, "data": data_base}
        self._section = "text"

    # -- pass 1 --------------------------------------------------------------

    def _here(self):
        return self._counters[self._section]

    def _advance(self, size):
        self._counters[self._section] += size

    def _layout(self, items):
        for item in items:
            if isinstance(item, Label):
                if item.name in self.symbols:
                    raise AsmError(f"duplicate label {item.name!r}",
                                   item.lineno)
                self.symbols[item.name] = self._here()
            elif isinstance(item, Directive):
                self._layout_directive(item)
            elif isinstance(item, Statement):
                self._layout_statement(item)

    def _layout_statement(self, stmt):
        if self._section != "text":
            raise AsmError("instruction outside .text", stmt.lineno)
        mnemonic = stmt.mnemonic
        known = (mnemonic in MEMORY_OPS or mnemonic in OPERATE_OPS
                 or mnemonic in BRANCH_OPS or mnemonic in JUMP_OPS
                 or mnemonic in PSEUDO_MNEMONICS or mnemonic == "call_pal")
        if not known:
            raise AsmError(f"unknown mnemonic {mnemonic!r}", stmt.lineno)
        if is_pseudo(mnemonic, stmt.operands):
            try:
                count = expansion_size(mnemonic, stmt.operands, _parse_int)
                expanded = expand(mnemonic, stmt.operands, _parse_int)
            except (ValueError, IndexError) as exc:
                raise AsmError(str(exc), stmt.lineno) from exc
            if len(expanded) != count:
                raise AsmError("pseudo expansion size mismatch", stmt.lineno)
            for sub_mnemonic, sub_operands in expanded:
                self._items.append(_Item(self._here(), "instr",
                                         (sub_mnemonic, sub_operands),
                                         stmt.lineno))
                self._advance(4)
        else:
            self._items.append(_Item(self._here(), "instr",
                                     (mnemonic, stmt.operands), stmt.lineno))
            self._advance(4)

    def _layout_directive(self, directive):
        name = directive.name
        if name == ".text":
            self._section = "text"
        elif name == ".data":
            self._section = "data"
        elif name == ".align":
            amount = _parse_int(directive.args[0])
            here = self._here()
            pad = (-here) % amount
            if pad:
                self._items.append(_Item(here, "data", b"\x00" * pad,
                                         directive.lineno))
                self._advance(pad)
        elif name in (".quad", ".long", ".word", ".byte"):
            size = {".quad": 8, ".long": 4, ".word": 2, ".byte": 1}[name]
            for arg in directive.args:
                self._items.append(_Item(self._here(), "data",
                                         ("value", size, arg),
                                         directive.lineno))
                self._advance(size)
        elif name == ".space":
            count = _parse_int(directive.args[0])
            fill = _parse_int(directive.args[1]) if len(directive.args) > 1 \
                else 0
            self._items.append(_Item(self._here(), "data",
                                     bytes([fill & 0xFF]) * count,
                                     directive.lineno))
            self._advance(count)
        elif name in (".ascii", ".asciz"):
            text = parse_string_literal(directive.args[0], directive.lineno)
            data = text.encode("latin-1")
            if name == ".asciz":
                data += b"\x00"
            self._items.append(_Item(self._here(), "data", data,
                                     directive.lineno))
            self._advance(len(data))
        else:
            raise AsmError(f"unknown directive {name!r}", directive.lineno)

    # -- pass 2 --------------------------------------------------------------

    def _resolve_int(self, text, lineno):
        text = text.strip()
        if _is_int(text):
            return _parse_int(text)
        hilo = _HILO_RE.match(text)
        if hilo:
            address = self._lookup(hilo.group("symbol"), lineno)
            high = (address + 0x8000) >> 16
            if hilo.group("which") == "hi":
                return high
            return address - (high << 16)
        return self._lookup(text, lineno)

    def _lookup(self, symbol, lineno):
        if symbol not in self.symbols:
            raise AsmError(f"undefined symbol {symbol!r}", lineno)
        return self.symbols[symbol]

    def _build_instruction(self, address, mnemonic, operands, lineno):
        try:
            return self._build_unchecked(address, mnemonic, operands, lineno)
        except (ValueError, IndexError, KeyError) as exc:
            raise AsmError(f"{mnemonic}: {exc}", lineno) from exc

    def _build_unchecked(self, address, mnemonic, operands, lineno):
        if mnemonic in MEMORY_OPS:
            ra = parse_reg(operands[0])
            match = _MEM_RE.match(operands[1].strip())
            if not match:
                raise ValueError(f"bad memory operand {operands[1]!r}")
            disp_text = match.group("disp").strip()
            disp = self._resolve_int(disp_text, lineno) if disp_text else 0
            rb = parse_reg(match.group("base"))
            return Instruction(mnemonic, ra=ra, rb=rb, imm=disp)
        if mnemonic in OPERATE_OPS:
            if mnemonic in RB_ONLY_OPS:
                source, dest = operands
                if _is_int(source):
                    return Instruction(mnemonic, rc=parse_reg(dest),
                                       imm=_parse_int(source), islit=True)
                return Instruction(mnemonic, rb=parse_reg(source),
                                   rc=parse_reg(dest))
            ra_text, b_text, rc_text = operands
            ra = parse_reg(ra_text)
            rc = parse_reg(rc_text)
            if _is_int(b_text):
                return Instruction(mnemonic, ra=ra, rc=rc,
                                   imm=_parse_int(b_text), islit=True)
            return Instruction(mnemonic, ra=ra, rb=parse_reg(b_text), rc=rc)
        if mnemonic in BRANCH_OPS:
            ra = parse_reg(operands[0])
            target = self._resolve_int(operands[1], lineno)
            disp, remainder = divmod(target - (address + 4), 4)
            if remainder:
                raise ValueError(f"misaligned branch target {target:#x}")
            return Instruction(mnemonic, ra=ra, imm=disp)
        if mnemonic in JUMP_OPS:
            ra = parse_reg(operands[0])
            match = _MEM_RE.match(operands[1].strip())
            if not match or match.group("disp").strip():
                raise ValueError(f"bad jump operand {operands[1]!r}")
            rb = parse_reg(match.group("base"))
            return Instruction(mnemonic, ra=ra, rb=rb)
        if mnemonic == "call_pal":
            arg = operands[0].strip().lower()
            function = PAL_FUNCTIONS.get(arg)
            if function is None:
                function = _parse_int(arg)
            return Instruction("call_pal", imm=function)
        raise KeyError(f"unknown mnemonic {mnemonic!r}")

    # -- driver ----------------------------------------------------------------

    def assemble(self, source, source_name="<string>"):
        """Assemble ``source`` text and return a loaded :class:`Program`."""
        try:
            parsed = parse_source(source)
        except AsmSyntaxError as exc:
            raise AsmError(str(exc)) from exc
        self._layout(parsed)
        self.symbols.setdefault("__stack_top",
                                self.stack_base + self.stack_size)

        memory = Memory()
        text_size = self._counters["text"] - self.text_base
        data_size = self._counters["data"] - self.data_base
        memory.map_segment("text", self.text_base, max(text_size, 4))
        if data_size or True:
            memory.map_segment("data", self.data_base, max(data_size, 8))
        memory.map_segment("stack", self.stack_base, self.stack_size)

        for item in self._items:
            if item.kind == "instr":
                mnemonic, operands = item.payload
                instr = self._build_instruction(item.address, mnemonic,
                                                operands, item.lineno)
                word = encode(instr)
                memory.store(item.address, word, 4)
            else:
                payload = item.payload
                if isinstance(payload, tuple):
                    _tag, size, arg = payload
                    value = self._resolve_int(arg, item.lineno)
                    memory.store(item.address, value & ((1 << (8 * size)) - 1),
                                 size)
                else:
                    memory.write_bytes(item.address, payload)

        entry = self.symbols.get("_start", self.text_base)
        return Program(memory, entry, symbols=self.symbols,
                       text_base=self.text_base, text_size=text_size,
                       source_name=source_name)


def assemble(source, source_name="<string>", **layout):
    """Assemble ``source`` with default section layout; see :class:`Assembler`."""
    return Assembler(**layout).assemble(source, source_name=source_name)
