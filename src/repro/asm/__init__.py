"""A small two-pass assembler for the Alpha subset.

Workloads in this repository are written as assembly text and assembled into
genuine binary images (32-bit encoded words in a sparse memory), which the
VM's interpreter then decodes — the same front door a real co-designed VM
presents to conventional binaries.
"""

from repro.asm.assembler import assemble, AsmError

__all__ = ["assemble", "AsmError"]
