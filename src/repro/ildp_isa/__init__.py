"""The accumulator-oriented I-ISA (implementation instruction set).

This is the instruction set the co-designed hardware executes (Section 2 of
the paper).  Two formats exist:

* the **basic** format from the ISCA 2002 ILDP paper: each instruction names
  one accumulator and at most one GPR, results go to the accumulator, and
  architected GPR state is maintained with explicit ``copy-to-GPR``
  instructions;
* the **modified** format introduced by this paper: every result-producing
  instruction carries an explicit destination GPR (kept in an
  off-critical-path architected file), which removes almost all copy
  instructions at the price of wider encodings.

The package also defines the co-designed VM's special instructions:
``set-VPC-base``, ``load-embedded-target-address``,
``call-translator[-if-condition-is-met]``, ``save-V-ISA-return-address``,
``push-dual-address-RAS`` and the RAS-predicted return.
"""

from repro.ildp_isa.opcodes import IOp, IFormat
from repro.ildp_isa.instruction import IInstruction
from repro.ildp_isa.sizes import instruction_size
from repro.ildp_isa.semantics import IALU_OPS, icond_taken
from repro.ildp_isa.disasm import disassemble_iinstr

__all__ = [
    "IOp",
    "IFormat",
    "IInstruction",
    "instruction_size",
    "IALU_OPS",
    "icond_taken",
    "disassemble_iinstr",
]
