"""Binary encoding of I-ISA instructions.

The in-memory translator works on :class:`IInstruction` objects; this
module defines the reference bit-level encoding a real co-designed VM
would emit into its concealed translation cache.  One instruction packs
into a fixed-width word (:data:`IWORD_BITS` bits, returned as a Python
int) laid out LSB-first in the field order of :data:`_FIELDS` below.

Design notes:

* every optional field spends a sentinel code (``0`` = absent) rather
  than a separate presence bit, except the three address fields, which
  carry an explicit presence bit so that address 0 stays representable;
* ``imm`` is 64-bit two's complement — V-ISA displacements and literals
  are sign-extended before they reach the translator;
* the *layout* attributes (``address``, ``size``, ``strand_start``,
  ``v_weight``) are deliberately not encoded: they are products of
  translation-cache layout, recomputed when a fragment is placed, not
  part of the instruction itself;
* :func:`decode_iinstr` validates every field domain and the reserved
  high bits, so a corrupted word raises :class:`IEncodingError` instead
  of producing a plausible-looking wrong instruction.
"""

from repro.ildp_isa.instruction import IInstruction
from repro.ildp_isa.opcodes import IOp
from repro.ildp_isa.semantics import IALU_OPS
from repro.isa.semantics import BRANCH_CONDITIONS


class IEncodingError(Exception):
    """Raised for unencodable instructions and malformed words."""


#: iop code = index into this table (sorted for stability across runs).
_IOPS = tuple(sorted(IOp, key=lambda iop: iop.value))
_IOP_CODE = {iop: index for index, iop in enumerate(_IOPS)}

#: op-name code; 0 reserved for None.  Covers the ALU table (including
#: the cmov decomposition helpers) and the branch-condition names.
_OP_NAMES = (None,) + tuple(sorted(set(IALU_OPS) | set(BRANCH_CONDITIONS)))
_OP_CODE = {name: index for index, name in enumerate(_OP_NAMES)}

#: operand-source specifier code (shared by the five ``*_src`` fields).
_SOURCES = (None, "acc", "gpr", "gpr2", "imm", "zero")
_SOURCE_CODE = {name: index for index, name in enumerate(_SOURCES)}

_MEM_SIZES = (1, 2, 4, 8)

_REG_BITS = 6         # 0 = None, else register + 1 (registers 0..31)
_ACC_BITS = 5         # 0 = None, else accumulator + 1
_ADDR_BITS = 48       # target / vtarget / vpc value width
_IMM_BITS = 64


def _optional(value, limit, what):
    """Sentinel-coded optional small int: 0 = None, else value + 1."""
    if value is None:
        return 0
    if not isinstance(value, int) or not 0 <= value < limit:
        raise IEncodingError(f"{what} out of range: {value!r}")
    return value + 1


def _coded(table, value, what):
    try:
        return table[value]
    except (KeyError, TypeError):
        raise IEncodingError(f"unencodable {what}: {value!r}") from None


def _address(value, what):
    """Presence-bit-plus-value coding for the address fields."""
    if value is None:
        return 0
    if not isinstance(value, int) or not 0 <= value < (1 << _ADDR_BITS):
        raise IEncodingError(f"{what} out of range: {value!r}")
    return (1 << _ADDR_BITS) | value


def encode_iinstr(instr):
    """Pack one IInstruction into its fixed-width binary word."""
    if instr.imm is None or not -(1 << 63) <= instr.imm < (1 << 63):
        raise IEncodingError(f"imm out of range: {instr.imm!r}")
    if instr.mem_size not in _MEM_SIZES:
        raise IEncodingError(f"bad mem_size: {instr.mem_size!r}")

    fields = (
        (_coded(_IOP_CODE, instr.iop, "iop"), 5),
        (_coded(_OP_CODE, instr.op, "op"), 7),
        (_optional(instr.acc, (1 << _ACC_BITS) - 1, "acc"), _ACC_BITS),
        (_optional(instr.gpr, 32, "gpr"), _REG_BITS),
        (_optional(instr.gpr2, 32, "gpr2"), _REG_BITS),
        (_optional(instr.dest_gpr, 32, "dest_gpr"), _REG_BITS),
        (instr.imm & ((1 << _IMM_BITS) - 1), _IMM_BITS),
        (1 if instr.islit else 0, 1),
        (_coded(_SOURCE_CODE, instr.src_a, "src_a"), 3),
        (_coded(_SOURCE_CODE, instr.src_b, "src_b"), 3),
        (_coded(_SOURCE_CODE, instr.addr_src, "addr_src"), 3),
        (_coded(_SOURCE_CODE, instr.data_src, "data_src"), 3),
        (_coded(_SOURCE_CODE, instr.cond_src, "cond_src"), 3),
        (1 if instr.operational else 0, 1),
        (_MEM_SIZES.index(instr.mem_size), 2),
        (1 if instr.mem_signed else 0, 1),
        (_address(instr.target, "target"), _ADDR_BITS + 1),
        (_address(instr.vtarget, "vtarget"), _ADDR_BITS + 1),
        (_address(instr.vpc, "vpc"), _ADDR_BITS + 1),
    )
    word = 0
    shift = 0
    for value, width in fields:
        word |= value << shift
        shift += width
    return word


#: Total payload width; the word is exactly this wide and any higher bit
#: set is a malformed-word error.  Kept in sync with the field list in
#: :func:`encode_iinstr`.
IWORD_BITS = (5 + 7 + _ACC_BITS + 3 * _REG_BITS + _IMM_BITS + 1
              + 5 * 3 + 1 + 2 + 1 + 3 * (_ADDR_BITS + 1))


class _Reader:
    def __init__(self, word):
        self.word = word
        self.shift = 0

    def take(self, width):
        value = (self.word >> self.shift) & ((1 << width) - 1)
        self.shift += width
        return value


def _decode_optional(code, limit, what):
    if code == 0:
        return None
    value = code - 1
    if value >= limit:
        raise IEncodingError(f"malformed {what} code: {code}")
    return value


def _decode_table(table, code, what):
    if code >= len(table):
        raise IEncodingError(f"malformed {what} code: {code}")
    return table[code]


def _decode_address(code):
    if code & (1 << _ADDR_BITS):
        return code & ((1 << _ADDR_BITS) - 1)
    if code != 0:
        raise IEncodingError("address bits set without presence bit")
    return None


def decode_iinstr(word):
    """Unpack a binary word; raises IEncodingError on any malformation."""
    if not isinstance(word, int) or word < 0:
        raise IEncodingError(f"not an instruction word: {word!r}")
    if word >> IWORD_BITS:
        raise IEncodingError("reserved high bits set")

    reader = _Reader(word)
    iop = _decode_table(_IOPS, reader.take(5), "iop")
    op = _decode_table(_OP_NAMES, reader.take(7), "op")
    acc = _decode_optional(reader.take(_ACC_BITS),
                           (1 << _ACC_BITS) - 1, "acc")
    gpr = _decode_optional(reader.take(_REG_BITS), 32, "gpr")
    gpr2 = _decode_optional(reader.take(_REG_BITS), 32, "gpr2")
    dest_gpr = _decode_optional(reader.take(_REG_BITS), 32, "dest_gpr")
    imm = reader.take(_IMM_BITS)
    if imm >= (1 << 63):
        imm -= 1 << _IMM_BITS
    islit = bool(reader.take(1))
    src_a = _decode_table(_SOURCES, reader.take(3), "src_a")
    src_b = _decode_table(_SOURCES, reader.take(3), "src_b")
    addr_src = _decode_table(_SOURCES, reader.take(3), "addr_src")
    data_src = _decode_table(_SOURCES, reader.take(3), "data_src")
    cond_src = _decode_table(_SOURCES, reader.take(3), "cond_src")
    operational = bool(reader.take(1))
    mem_size = _MEM_SIZES[reader.take(2)]
    mem_signed = bool(reader.take(1))
    target = _decode_address(reader.take(_ADDR_BITS + 1))
    vtarget = _decode_address(reader.take(_ADDR_BITS + 1))
    vpc = _decode_address(reader.take(_ADDR_BITS + 1))

    return IInstruction(iop, op=op, acc=acc, gpr=gpr, gpr2=gpr2, imm=imm,
                        islit=islit, src_a=src_a, src_b=src_b,
                        addr_src=addr_src, data_src=data_src,
                        cond_src=cond_src, dest_gpr=dest_gpr,
                        operational=operational, mem_size=mem_size,
                        mem_signed=mem_signed, target=target,
                        vtarget=vtarget, vpc=vpc)


#: The attributes the codec round-trips (everything except layout state).
SEMANTIC_FIELDS = ("iop", "op", "acc", "gpr", "gpr2", "imm", "islit",
                   "src_a", "src_b", "addr_src", "data_src", "cond_src",
                   "dest_gpr", "operational", "mem_size", "mem_signed",
                   "target", "vtarget", "vpc")


def iinstr_fields(instr):
    """Semantic-field dict, for equality checks in round-trip tests."""
    return {name: getattr(instr, name) for name in SEMANTIC_FIELDS}
