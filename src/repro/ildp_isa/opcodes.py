"""I-ISA operation and format enumerations."""

import enum


class IFormat(enum.Enum):
    """Which target a fragment is encoded in.

    BASIC and MODIFIED are the two accumulator I-ISA variants of paper
    Sections 2.1/2.3.  ALPHA is the "code-straightening-only" target of
    Section 4.1: the same superblock formation and chaining, but the
    instructions remain conventional two-source-register Alpha operations
    (4 bytes each).
    """

    BASIC = "basic"
    MODIFIED = "modified"
    ALPHA = "alpha"


class IOp(enum.Enum):
    """I-ISA operation classes.

    The ordinary computation set mirrors the Alpha integer operations but is
    accumulator-oriented; the remainder are the co-designed VM's special
    instructions for chaining and precise-trap support.
    """

    # ordinary computation
    ALU = "alu"                      # A <- op(operands)
    LOAD = "load"                    # A <- mem[A|R (+imm)]
    STORE = "store"                  # mem[A|R] <- A|R
    COPY_TO_GPR = "copy_to_gpr"      # R <- A
    COPY_FROM_GPR = "copy_from_gpr"  # A <- R  (starts a strand)
    BRANCH = "branch"                # P <- target, if cond(A|R)
    BR = "br"                        # P <- target (I-address, unconditional)

    # co-designed VM special instructions
    SET_VPC_BASE = "set_vpc_base"    # first instr of every fragment
    SAVE_VRA = "save_vra"            # R <- embedded V-ISA return address
    PUSH_RAS = "push_ras"            # push (V-return, I-return) pair
    RET_RAS = "ret_ras"              # RAS-predicted return (verify vs R)
    LOAD_EMB = "load_emb"            # A <- embedded V-ISA target address
    CALL_TRANSLATOR = "call_translator"            # exit to VM at V-target
    COND_CALL_TRANSLATOR = "cond_call_translator"  # ... if cond(A|R) is met
    TO_DISPATCH = "to_dispatch"      # branch to the shared dispatch code
    JMP_DISPATCH = "jmp_dispatch"    # indirect jump inside the dispatch code

    # system
    HALT = "halt"
    PUTC = "putc"
    GENTRAP = "gentrap"
    SYSCALL = "syscall"              # PAL syscall dispatch (imm = function)

    #: Enum members are singletons, so the identity hash is equivalent to
    #: the default name-based hash — and much cheaper.  ``VMStats``
    #: counters are keyed by IOp on every executed instruction, which
    #: makes hashing measurably hot under both execution engines.
    __hash__ = object.__hash__


#: IOps that end a fragment's fall-through path unconditionally.
TERMINATORS = frozenset(
    {
        IOp.BR,
        IOp.RET_RAS,
        IOp.CALL_TRANSLATOR,
        IOp.TO_DISPATCH,
        IOp.JMP_DISPATCH,
        IOp.HALT,
        IOp.GENTRAP,
    }
)

#: IOps that may transfer control (for BTB / predictor modelling).
CONTROL_OPS = frozenset(
    {
        IOp.BRANCH,
        IOp.BR,
        IOp.RET_RAS,
        IOp.CALL_TRANSLATOR,
        IOp.COND_CALL_TRANSLATOR,
        IOp.TO_DISPATCH,
        IOp.JMP_DISPATCH,
    }
)
