"""Value semantics for I-ISA computation instructions.

The ALU table extends the Alpha table with the two-piece decomposition of
conditional moves: ``cmov1_<cond>`` packs the predicate and the old
destination value into a 65-bit intermediate held in an accumulator (the
"temp" usage of Section 3.3), and ``cmov2`` selects.  Real ILDP hardware
carries this as a predicate sideband bit; a 65-bit accumulator value is the
functional-model equivalent.
"""

from repro.isa.semantics import ALU_OPS, BRANCH_CONDITIONS, CMOV_CONDITIONS
from repro.utils.bitops import MASK64

_CMOV1_FLAG_SHIFT = 64


def _make_cmov1(condition):
    def cmov1(a, old):
        flag = 1 if condition(a) else 0
        return (flag << _CMOV1_FLAG_SHIFT) | (old & MASK64)

    return cmov1


def _cmov2(temp, b):
    if (temp >> _CMOV1_FLAG_SHIFT) & 1:
        return b & MASK64
    return temp & MASK64


def _build_ialu_table():
    table = dict(ALU_OPS)
    for name, condition in CMOV_CONDITIONS.items():
        table[f"cmov1_{name[4:]}"] = _make_cmov1(condition)
    table["cmov2"] = _cmov2
    return table


#: mnemonic -> f(a, b); operand a is the accumulator-side value by convention.
IALU_OPS = _build_ialu_table()


def icond_taken(cond_name, value):
    """Evaluate a conditional I-branch predicate (same names as Alpha)."""
    return BRANCH_CONDITIONS[cond_name](value & MASK64)
