"""Textual rendering of I-ISA instructions, in the paper's RTL-like notation.

Examples (compare Fig. 2 of the paper)::

    A0 <- mem[R16]            ; basic load
    A1 <- R17 - 1             ; strand start
    R17 <- A1                 ; copy-to-GPR
    R17(A1) <- R17 - 1        ; modified format
    P <- 0x20010, if (A1 != 0)
"""

from repro.ildp_isa.opcodes import IFormat, IOp

_COND_TEXT = {
    "eq": "== 0",
    "ne": "!= 0",
    "lt": "< 0",
    "le": "<= 0",
    "ge": ">= 0",
    "gt": "> 0",
    "lbc": "lbc",
    "lbs": "lbs",
}

_INFIX = {
    "addq": "+", "addl": "+", "subq": "-", "subl": "-",
    "and": "and", "bis": "or", "xor": "xor", "bic": "andnot",
    "ornot": "ornot", "eqv": "eqv",
    "sll": "<<", "srl": ">>", "sra": ">>a",
    "mulq": "*", "mull": "*",
}


def _acc(instr):
    return f"A{instr.acc}" if instr.acc is not None else "A?"


def _gpr(index):
    return f"R{index}"


def _source(instr, which):
    source = instr.src_a if which == "a" else instr.src_b
    if source == "acc":
        return _acc(instr)
    if source == "gpr":
        return _gpr(instr.gpr)
    if source == "gpr2":
        return _gpr(instr.gpr2)
    if source == "imm":
        return str(instr.imm)
    return None


def _dest(instr, show_modified):
    if show_modified and instr.dest_gpr is not None:
        marker = "" if instr.operational else ""
        return f"{_gpr(instr.dest_gpr)}({_acc(instr)}){marker}"
    if instr.acc is None and instr.dest_gpr is not None:
        return _gpr(instr.dest_gpr)  # ALPHA format
    return _acc(instr)


def _target(instr):
    if instr.target is not None:
        return f"{instr.target:#x}"
    if instr.vtarget is not None:
        return f"V:{instr.vtarget:#x}"
    return "?"


def _cond_value(instr):
    if instr.cond_src == "acc":
        return _acc(instr)
    return _gpr(instr.gpr)


def _alu_text(instr, show_modified):
    dest = _dest(instr, show_modified)
    a_text = _source(instr, "a")
    b_text = _source(instr, "b")
    op = instr.op
    if op in ("s4addq", "s8addq", "s4addl", "s8addl",
              "s4subq", "s8subq", "s4subl", "s8subl"):
        scale = "4" if "4" in op else "8"
        sign = "-" if "sub" in op else "+"
        return f"{dest} <- {scale}*{a_text} {sign} {b_text}"
    if a_text is None:
        return f"{dest} <- {op}({b_text})"
    symbol = _INFIX.get(op)
    if symbol:
        return f"{dest} <- {a_text} {symbol} {b_text}"
    return f"{dest} <- {op}({a_text}, {b_text})"


def disassemble_iinstr(instr, fmt=None):
    """Render an :class:`IInstruction`; pass ``fmt=IFormat.MODIFIED`` for the
    destination-register notation of Fig. 2d."""
    show_modified = fmt is IFormat.MODIFIED
    iop = instr.iop
    if iop is IOp.ALU:
        return _alu_text(instr, show_modified)
    if iop is IOp.LOAD:
        base = _acc(instr) if instr.addr_src == "acc" else _gpr(instr.gpr)
        disp = f" + {instr.imm}" if instr.imm else ""
        return f"{_dest(instr, show_modified)} <- mem[{base}{disp}]"
    if iop is IOp.STORE:
        base = _acc(instr) if instr.addr_src == "acc" else _gpr(instr.gpr)
        if instr.data_src == "acc":
            data = _acc(instr)
        elif instr.data_src == "gpr2":
            data = _gpr(instr.gpr2)
        else:
            data = _gpr(instr.gpr)
        disp = f" + {instr.imm}" if instr.imm else ""
        return f"mem[{base}{disp}] <- {data}"
    if iop is IOp.COPY_TO_GPR:
        return f"{_gpr(instr.gpr)} <- {_acc(instr)}"
    if iop is IOp.COPY_FROM_GPR:
        return f"{_acc(instr)} <- {_gpr(instr.gpr)}"
    if iop is IOp.BRANCH:
        cond = instr.op[1:]
        return (f"P <- {_target(instr)}, "
                f"if ({_cond_value(instr)} {_COND_TEXT[cond]})")
    if iop is IOp.BR:
        return f"P <- {_target(instr)}"
    if iop is IOp.SET_VPC_BASE:
        return f"VPC_base <- {instr.vtarget:#x}"
    if iop is IOp.SAVE_VRA:
        return f"{_gpr(instr.gpr)} <- vra {instr.vtarget:#x}"
    if iop is IOp.PUSH_RAS:
        where = f"{instr.target:#x}" if instr.target is not None else \
            "dispatch"
        return f"push_ras (V:{instr.vtarget:#x}, I:{where})"
    if iop is IOp.RET_RAS:
        return f"ret_ras ({_gpr(instr.gpr)})"
    if iop is IOp.LOAD_EMB:
        return f"{_acc(instr)} <- emb {instr.vtarget:#x}"
    if iop is IOp.CALL_TRANSLATOR:
        return f"call_translator V:{instr.vtarget:#x}"
    if iop is IOp.COND_CALL_TRANSLATOR:
        cond = instr.op[1:]
        return (f"call_translator V:{instr.vtarget:#x}, "
                f"if ({_cond_value(instr)} {_COND_TEXT[cond]})")
    if iop is IOp.TO_DISPATCH:
        return f"P <- dispatch (R{instr.gpr})"
    if iop is IOp.JMP_DISPATCH:
        return "P <- lookup(Vtarget)"
    if iop is IOp.HALT:
        return "halt"
    if iop is IOp.PUTC:
        return "putc"
    if iop is IOp.GENTRAP:
        return "gentrap"
    raise ValueError(f"cannot disassemble {iop}")
