"""The I-ISA instruction object.

One class covers the basic format, the modified format, and the
"code-straightening-only" Alpha target (used by the paper's third
DBT/simulator), selected by the fragment's
:class:`~repro.ildp_isa.opcodes.IFormat`.

Operand model
-------------

ALU instructions evaluate ``op(a, b)`` where each of ``src_a``/``src_b``
names where the operand comes from:

* ``"acc"`` — the instruction's accumulator (strand continuation),
* ``"gpr"`` — the single GPR operand the accumulator formats allow,
* ``"gpr2"`` — a second GPR, legal only in the ALPHA format,
* ``"imm"`` — the literal in ``imm``,
* ``None`` — unused (unary operations pass 0).

Loads take their address from ``addr_src`` (``"acc"``/``"gpr"``) plus the
``imm`` displacement; stores also name ``data_src``.  The accumulator
formats keep the invariant *at most one accumulator and at most one GPR per
instruction* (Section 2.1); the code generator enforces it.

Other field conventions
-----------------------

``dest_gpr``
    Architected destination register of the translated Alpha instruction.
    Encoded in the modified format (Section 2.3); metadata for PEI recovery
    in the basic format; the real destination in the ALPHA format.
``operational``
    Modified format: the result is a communication/live-out value and must
    be written to the latency-critical operational GPR file.
``target`` / ``vtarget``
    ``target`` is a translation-cache (I-ISA) address assigned at layout
    time and rewritten by chaining patches; ``vtarget`` is the corresponding
    V-ISA address.
``vpc``
    V-ISA address of the source instruction (None for chaining glue).
"""

from repro.ildp_isa.opcodes import IOp, CONTROL_OPS


class IInstruction:
    """One I-ISA (or straightened-Alpha) instruction."""

    __slots__ = (
        "iop",
        "op",
        "acc",
        "gpr",
        "gpr2",
        "imm",
        "islit",
        "src_a",
        "src_b",
        "addr_src",
        "data_src",
        "cond_src",
        "dest_gpr",
        "operational",
        "mem_size",
        "mem_signed",
        "target",
        "vtarget",
        "vpc",
        "address",
        "size",
        "strand_start",
        "v_weight",
    )

    def __init__(self, iop, op=None, acc=None, gpr=None, gpr2=None, imm=0,
                 islit=False, src_a=None, src_b=None, addr_src=None,
                 data_src=None, cond_src=None, dest_gpr=None,
                 operational=False, mem_size=8, mem_signed=False,
                 target=None, vtarget=None, vpc=None):
        self.iop = iop
        self.op = op
        self.acc = acc
        self.gpr = gpr
        self.gpr2 = gpr2
        self.imm = imm
        self.islit = islit
        self.src_a = src_a
        self.src_b = src_b
        self.addr_src = addr_src
        self.data_src = data_src
        self.cond_src = cond_src
        self.dest_gpr = dest_gpr
        self.operational = operational
        self.mem_size = mem_size
        self.mem_signed = mem_signed
        self.target = target
        self.vtarget = vtarget
        self.vpc = vpc
        self.address = None       # assigned at tcache layout time
        self.size = None          # assigned by the size model at layout time
        self.strand_start = False
        #: V-ISA instructions this one accounts for when executed: 1 for the
        #: first I-instruction of each translated source instruction, else 0
        #: (assigned at layout time).
        self.v_weight = 0

    # -- classification ------------------------------------------------------

    def is_control(self):
        """True when the instruction may redirect fetch."""
        return self.iop in CONTROL_OPS

    def is_conditional(self):
        return self.iop in (IOp.BRANCH, IOp.COND_CALL_TRANSLATOR)

    def is_copy(self):
        """True for the register-state copy instructions Table 2 counts."""
        return self.iop in (IOp.COPY_TO_GPR, IOp.COPY_FROM_GPR)

    def is_pei(self):
        """Potentially-excepting instruction (memory access)."""
        return self.iop in (IOp.LOAD, IOp.STORE)

    def writes_acc(self):
        """True when the instruction produces a value into its accumulator."""
        return self.acc is not None and self.iop in (
            IOp.ALU, IOp.LOAD, IOp.COPY_FROM_GPR, IOp.LOAD_EMB)

    def reads_acc(self):
        """True when the accumulator's old value is a source operand."""
        if self.acc is None:
            return False
        if self.iop is IOp.ALU:
            return self.src_a == "acc" or self.src_b == "acc"
        if self.iop is IOp.LOAD:
            return self.addr_src == "acc"
        if self.iop is IOp.STORE:
            return self.addr_src == "acc" or self.data_src == "acc"
        if self.iop in (IOp.BRANCH, IOp.COND_CALL_TRANSLATOR):
            return self.cond_src == "acc"
        if self.iop in (IOp.COPY_TO_GPR, IOp.JMP_DISPATCH):
            return True
        return False

    def gpr_sources(self):
        """Tuple of GPR indices read by this instruction."""
        out = []
        if self.iop is IOp.ALU:
            if self.src_a == "gpr" or self.src_b == "gpr":
                out.append(self.gpr)
            if self.src_a == "gpr2" or self.src_b == "gpr2":
                out.append(self.gpr2)
        elif self.iop is IOp.LOAD:
            if self.addr_src == "gpr":
                out.append(self.gpr)
        elif self.iop is IOp.STORE:
            if self.addr_src == "gpr":
                out.append(self.gpr)
            if self.data_src == "gpr":
                out.append(self.gpr)
            if self.data_src == "gpr2":
                out.append(self.gpr2)
        elif self.iop in (IOp.BRANCH, IOp.COND_CALL_TRANSLATOR):
            if self.cond_src == "gpr":
                out.append(self.gpr)
        elif self.iop is IOp.COPY_FROM_GPR:
            out.append(self.gpr)
        elif self.iop is IOp.RET_RAS:
            out.append(self.gpr)
        return tuple(r for r in out if r is not None)

    def gpr_dest(self, fmt):
        """GPR written on the critical path under format ``fmt``, or None.

        Basic-format computation writes only its accumulator (copies move
        values to GPRs); the modified format writes ``dest_gpr`` to the
        operational file only for communication/live-out values; the ALPHA
        format writes ``dest_gpr`` directly.
        """
        from repro.ildp_isa.opcodes import IFormat

        if self.iop in (IOp.COPY_TO_GPR, IOp.SAVE_VRA):
            return self.gpr
        if self.dest_gpr is None or self.iop not in (
                IOp.ALU, IOp.LOAD, IOp.COPY_FROM_GPR):
            return None
        if fmt is IFormat.ALPHA:
            return self.dest_gpr
        if fmt is IFormat.MODIFIED and self.operational:
            return self.dest_gpr
        return None

    def __repr__(self):
        from repro.ildp_isa.disasm import disassemble_iinstr

        return f"<I {disassemble_iinstr(self)}>"
