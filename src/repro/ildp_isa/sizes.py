"""Static size model for I-ISA instructions (paper Sections 2.1 and 2.3).

The basic format encodes "many instructions" in 16 bits: one accumulator
specifier, at most one GPR and a short literal fit easily.  Instructions
carrying long immediates or embedded 32-bit-plus addresses take 32 or 64
bits.  The modified format widens result-producing instructions to 32 bits
because they carry an explicit destination GPR specifier, losing some of the
small-footprint benefit (Section 2.3) — which is exactly what Table 2's
static-bytes columns measure.
"""

from repro.ildp_isa.opcodes import IFormat, IOp

#: Largest literal a 16-bit encoding can carry (5-bit unsigned field).
SHORT_LITERAL_LIMIT = 31

#: Instructions that embed a full V-ISA address: 32-bit opcode word plus a
#: 32-bit address payload.
_EMBEDDED_ADDRESS_OPS = frozenset(
    {
        IOp.SET_VPC_BASE,
        IOp.SAVE_VRA,
        IOp.LOAD_EMB,
        IOp.CALL_TRANSLATOR,
        IOp.COND_CALL_TRANSLATOR,
    }
)


def instruction_size(instr, fmt):
    """Return the encoded size in bytes of ``instr`` under format ``fmt``."""
    iop = instr.iop

    if fmt is IFormat.ALPHA:
        # conventional fixed-width ISA; embedded-address operations stand
        # for an ldah+lda style two-instruction sequence
        return 8 if iop in _EMBEDDED_ADDRESS_OPS or iop is IOp.PUSH_RAS \
            else 4

    if iop in _EMBEDDED_ADDRESS_OPS:
        return 8
    if iop is IOp.PUSH_RAS:
        # embeds both a V-ISA and an I-ISA return address
        return 8
    if iop in (IOp.BRANCH, IOp.BR, IOp.TO_DISPATCH):
        # branches carry a tcache displacement; modelled as 32-bit always
        return 4
    if iop in (IOp.RET_RAS, IOp.JMP_DISPATCH, IOp.HALT, IOp.PUTC,
               IOp.GENTRAP):
        return 2
    if iop is IOp.SYSCALL:
        # carries the PAL function number, like a CALL_PAL would
        return 4
    if iop in (IOp.COPY_TO_GPR, IOp.COPY_FROM_GPR):
        # one accumulator + one GPR specifier: always 16-bit
        return 2

    if iop in (IOp.ALU, IOp.LOAD, IOp.STORE):
        wide_literal = instr.islit and not \
            (0 <= instr.imm <= SHORT_LITERAL_LIMIT)
        wide_displacement = (iop in (IOp.LOAD, IOp.STORE)
                             and instr.imm != 0)
        if wide_literal or wide_displacement:
            return 4
        if fmt is IFormat.MODIFIED and instr.dest_gpr is not None and \
                instr.writes_acc():
            # The destination-GPR specifier forces the 32-bit encoding
            # unless it can share the single GPR field with the source
            # (Fig. 2d's common accumulate form, e.g. R17(A1) <- R17 - 1).
            if instr.gpr == instr.dest_gpr and instr.gpr is not None:
                return 2
            return 4
        return 2

    raise ValueError(f"no size rule for {iop}")
