"""Persistent translation cache: serialize fragments across processes.

The subsystem has three layers (see ``docs/serving.md``):

* :mod:`repro.persist.codec` — turn a translated fragment (pre-install
  codegen output) into a JSON record keyed by its superblock's path
  digest, and rebuild a bit-identical fragment from such a record when
  the translation-cache chain context matches;
* :mod:`repro.persist.store` — the versioned on-disk fragment store
  (CRC-per-record, header versioning, corrupt-entry quarantine) plus
  :class:`~repro.persist.store.PersistStats`, following the ResultCache
  patterns;
* :mod:`repro.persist.session` — the per-VM glue: a
  :class:`~repro.persist.session.TranslationMemo` the translator
  consults before running the cold pipeline, loaded from / saved to the
  store around each run ("AOT warm-start").
"""

from repro.persist.session import PersistSession, TranslationMemo
from repro.persist.store import (
    ENV_PERSIST_DIR,
    ENV_PERSIST_MODE,
    FragmentStore,
    PersistStats,
    program_digest,
    store_key,
)

__all__ = [
    "ENV_PERSIST_DIR",
    "ENV_PERSIST_MODE",
    "FragmentStore",
    "PersistSession",
    "PersistStats",
    "TranslationMemo",
    "program_digest",
    "store_key",
]
