"""The versioned on-disk fragment store.

One store file holds every persisted translation record for one
``(guest image, semantic VMConfig)`` pair, keyed by :func:`store_key` —
the SHA-256 of the pristine program image hash plus
``VMConfig.key_fields()``.  Files live under a two-level fan-out
(``<root>/<key[:2]>/<key>.jsonl``) like the ResultCache.

File format (JSON lines)::

    {"format": "repro-fragment-store-v1", "schema": S, "generator": G,
     "code_sha256": ..., "config": {...}}          # header
    {"crc": <crc32>, "record": {...}}              # one per record

Versions live in the *header*, not the filename, so version skew is
detected at load time and reads as a clean miss (``stale_stores``
counter) — never an exception.  Each record carries a CRC32 of its
canonical JSON; a record that fails to parse or verify is skipped and
counted (``corrupt_records``), and a file whose header is unreadable is
renamed to ``<name>.quarantined`` so a damaged store cannot be
re-probed forever.  Saves are atomic (temp file + ``os.replace``) and
merge with the existing file's valid records, so concurrent VMs sharing
one store directory at worst overwrite each other with supersets.

Two fault-injection sites cover the subsystem (``docs/robustness.md``):
``persist_load`` fails a whole store load, ``persist_corrupt`` drops
individual records as if their CRCs failed.
"""

import hashlib
import os
import tempfile
import zlib
from json import JSONDecodeError, loads

from repro.faults.inject import NULL_INJECTOR
from repro.faults.plan import FaultSite
from repro.persist.codec import canonical_json

#: Bump when the store file layout changes shape.
STORE_SCHEMA_VERSION = 1
#: Bump when the record *contents* change meaning — any codec or
#: translator change that alters what a persisted fragment replays to.
#: 2: ``superblock_digest`` folds in each entry's raw instruction word
#: (the SMC surface made path shape alone ambiguous), and
#: ``program_digest`` covers the program's scripted input.
PERSIST_GENERATOR_VERSION = 2

STORE_FORMAT = "repro-fragment-store-v1"

#: Environment overlay picked up by ``run_vm`` when the config carries no
#: explicit ``persist_path`` — how ``repro serve`` hands the store to
#: pool workers that reconstruct configs from ``key_fields``.
ENV_PERSIST_DIR = "REPRO_PERSIST_DIR"
ENV_PERSIST_MODE = "REPRO_PERSIST_MODE"
#: Private persist-only fault plan (spec string / seed), consulted even
#: when ``VMConfig.faults`` is unset — lets ``repro serve`` chaos-test
#: store loads without polluting deterministic run telemetry.
ENV_PERSIST_FAULTS = "REPRO_PERSIST_FAULTS"
ENV_PERSIST_FAULT_SEED = "REPRO_PERSIST_FAULT_SEED"

#: Process-level store read cache: (path, mtime_ns, size) -> digest map.
#: A long-lived server boots many VMs against the same store file; the
#: cache skips re-parsing when the file is unchanged.  Bypassed whenever
#: a fault injector is active so injected schedules stay deterministic.
_LOAD_CACHE = {}
_LOAD_CACHE_LIMIT = 8


def program_digest(program):
    """Content hash (hex SHA-256) of a pristine guest program image.

    The scripted ``getc`` input is part of the identity: two programs
    with identical segments but different inputs follow different hot
    paths, and their stores must not alias.
    """
    sha = hashlib.sha256()
    sha.update(f"entry={program.entry:#x}".encode("ascii"))
    for segment in program.memory.segments:
        sha.update(f"|{segment.name}@{segment.base:#x}+{segment.size:#x}|"
                   .encode("ascii"))
        sha.update(program.memory.read_bytes(segment.base, segment.size))
    if program.input_script:
        sha.update(b"|input|")
        sha.update(program.input_script)
    return sha.hexdigest()


def store_key(code_sha256, config):
    """Store identity: guest image hash + the semantic config subset."""
    preimage = canonical_json({"code": code_sha256,
                               "config": config.key_fields()})
    return hashlib.sha256(preimage.encode("utf-8")).hexdigest()


class PersistStats:
    """Counters for one VM's persistence activity.

    Exported through ``Telemetry.host_summary()`` (the process-local
    block): warm hits depend on what happens to be on disk, so these
    must never enter the deterministic ``summary()`` that cached run
    summaries are built from.
    """

    FIELDS = ("stores_loaded", "records_loaded", "stale_stores",
              "load_failures", "corrupt_records", "quarantined",
              "warm_hits", "warm_misses", "chain_mismatches",
              "records_saved", "save_failures", "faults_injected")

    def __init__(self):
        for name in self.FIELDS:
            setattr(self, name, 0)

    def to_dict(self):
        return {name: getattr(self, name) for name in self.FIELDS}

    def __repr__(self):
        busy = {name: value for name, value in self.to_dict().items()
                if value}
        return f"PersistStats({busy})"


def record_crc(record):
    """CRC32 of a record's canonical JSON (the per-line integrity check)."""
    return zlib.crc32(canonical_json(record).encode("utf-8"))


class FragmentStore:
    """A directory of ``<key>.jsonl`` fragment-record files."""

    def __init__(self, root, stats=None, injector=None):
        self.root = root
        self.stats = stats if stats is not None else PersistStats()
        self.injector = injector if injector is not None else NULL_INJECTOR

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".jsonl")

    # -- loading ---------------------------------------------------------

    def load(self, key, code_sha256, config_fields):
        """Read the store file for ``key`` as ``{digest: [records]}``.

        Every failure mode is a counted clean miss returning ``{}``:
        missing file (silent), unreadable file (``load_failures``),
        version/identity skew (``stale_stores``), unparseable header
        (quarantine + ``quarantined``), bad records skipped one by one
        (``corrupt_records``).
        """
        stats = self.stats
        path = self._path(key)
        if self.injector.fire(FaultSite.PERSIST_LOAD, key=key):
            stats.load_failures += 1
            stats.faults_injected += 1
            return {}
        use_cache = not self.injector.enabled
        cache_key = None
        if use_cache:
            try:
                info = os.stat(path)
            except OSError:
                return {}
            # the identity/version ingredients are part of the key: a
            # cached parse must never be served across a header check it
            # would no longer pass
            cache_key = (path, info.st_mtime_ns, info.st_size,
                         code_sha256, canonical_json(config_fields),
                         STORE_SCHEMA_VERSION, PERSIST_GENERATOR_VERSION)
            cached = _LOAD_CACHE.get(cache_key)
            if cached is not None:
                stats.stores_loaded += 1
                stats.records_loaded += sum(
                    len(records) for records in cached.values())
                return cached
        loaded = self._read(path, key, code_sha256, config_fields,
                            stats=stats)
        if loaded is None:
            return {}
        stats.stores_loaded += 1
        stats.records_loaded += sum(
            len(records) for records in loaded.values())
        if use_cache and cache_key is not None:
            while len(_LOAD_CACHE) >= _LOAD_CACHE_LIMIT:
                _LOAD_CACHE.pop(next(iter(_LOAD_CACHE)))
            _LOAD_CACHE[cache_key] = loaded
        return loaded

    def _read(self, path, key, code_sha256, config_fields, stats=None):
        """Parse one store file; ``stats=None`` reads quietly (for save
        merges).  Returns ``{digest: [records]}`` or None on any
        whole-file failure."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except FileNotFoundError:
            return None
        except UnicodeDecodeError:
            # binary garbage where a store should be: same treatment as
            # an unparseable header
            if stats is not None:
                self._quarantine(path)
                stats.quarantined += 1
            return None
        except OSError:
            if stats is not None:
                stats.load_failures += 1
            return None
        header = None
        if lines:
            try:
                header = loads(lines[0])
            except (JSONDecodeError, ValueError):
                header = None
        if not isinstance(header, dict) or \
                header.get("format") != STORE_FORMAT:
            if stats is not None:
                self._quarantine(path)
                stats.quarantined += 1
            return None
        if header.get("schema") != STORE_SCHEMA_VERSION or \
                header.get("generator") != PERSIST_GENERATOR_VERSION or \
                header.get("code_sha256") != code_sha256 or \
                header.get("config") != config_fields:
            if stats is not None:
                stats.stale_stores += 1
            return None
        by_digest = {}
        for line in lines[1:]:
            if not line.strip():
                continue
            if stats is not None and self.injector.fire(
                    FaultSite.PERSIST_CORRUPT, key=key):
                stats.corrupt_records += 1
                stats.faults_injected += 1
                continue
            record = self._parse_record(line)
            if record is None:
                if stats is not None:
                    stats.corrupt_records += 1
                continue
            by_digest.setdefault(record["digest"], []).append(record)
        return by_digest

    @staticmethod
    def _parse_record(line):
        try:
            entry = loads(line)
        except (JSONDecodeError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        record = entry.get("record")
        if not isinstance(record, dict) or "digest" not in record or \
                entry.get("crc") != record_crc(record):
            return None
        return record

    def _quarantine(self, path):
        """Rename an unparseable store aside so it is never re-probed.

        A previous quarantine of the same key must not be clobbered
        (``os.replace`` would silently overwrite it): evidence of
        repeated corruption is worth keeping, so later quarantines get a
        counter suffix (``.quarantined.1``, ``.quarantined.2``, ...).
        """
        target = path + ".quarantined"
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = f"{path}.quarantined.{suffix}"
        try:
            os.replace(path, target)
        except OSError:
            pass

    # -- saving ----------------------------------------------------------

    def save(self, key, records, code_sha256, config_fields):
        """Atomically write ``records``, merged with the existing file.

        Merging is by record CRC, so concurrent writers converge on the
        union.  Write failures are swallowed and counted
        (``save_failures``) — a full disk must not kill the run whose
        results were already computed.  Returns the path, or None.
        """
        stats = self.stats
        path = self._path(key)
        merged = {}          # crc -> record, first-writer-wins
        existing = self._read(path, key, code_sha256, config_fields,
                              stats=None)
        if existing:
            for digest_records in existing.values():
                for record in digest_records:
                    merged[record_crc(record)] = record
        fresh = 0
        for record in records:
            crc = record_crc(record)
            if crc not in merged:
                merged[crc] = record
                fresh += 1
        header = {"format": STORE_FORMAT,
                  "schema": STORE_SCHEMA_VERSION,
                  "generator": PERSIST_GENERATOR_VERSION,
                  "code_sha256": code_sha256,
                  "config": config_fields}
        lines = [canonical_json(header)]
        lines.extend(canonical_json({"crc": crc, "record": record})
                     for crc, record in merged.items())
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        except OSError:
            stats.save_failures += 1
            return None
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
            os.replace(tmp_path, path)
        except OSError:
            stats.save_failures += 1
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return None
        stats.records_saved += fresh
        # drop any cached parse of the replaced file
        for cache_key in [k for k in _LOAD_CACHE if k[0] == path]:
            _LOAD_CACHE.pop(cache_key, None)
        return path

    def __repr__(self):
        return f"FragmentStore({self.root!r})"
