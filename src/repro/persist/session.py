"""Per-VM persistence glue: the translation memo and its store session.

:class:`TranslationMemo` is what the translator actually consults — a
digest-keyed map of persisted records.  The warm-start path is a
*translation memo*, not a boot-time preload: superblock capture runs
exactly as on a cold start, and only when the translator is about to run
the cold pipeline for a captured superblock does the memo offer a
persisted record.  A restored fragment is installed through the normal
``TranslationCache.add`` path (layout, checksums, chaining patches), and
the record's cost charges are replayed, so a warm run's ``VMStats`` are
bit-identical to the cold run's — the property
``tests/test_warm_differential.py`` pins across every workload.

:class:`PersistSession` owns one VM's store interaction: compute the
store key from the pristine program image and the config's semantic
fields at boot, load the store into the memo (``persist_mode`` of
``load``/``both``), and save the memo's freshly committed records after
the run (``save``/``both``).  Every failure along the way is a counted
clean miss — a VM with a corrupt, stale or unreadable store behaves
exactly like a cold VM, plus nonzero ``persist.*`` counters.
"""

import os

from repro.faults.inject import FaultInjector, NULL_INJECTOR
from repro.faults.plan import FaultPlan, FaultSite
from repro.obs.telemetry import NULL_TELEMETRY
from repro.persist.codec import (
    RestoreMismatch,
    UsageCounts,
    encode_record,
    restore_fragment,
    superblock_digest,
)
from repro.persist.store import (
    ENV_PERSIST_FAULT_SEED,
    ENV_PERSIST_FAULTS,
    FragmentStore,
    PersistStats,
    program_digest,
    record_crc,
    store_key,
)
from repro.translator.pipeline import TranslationResult

#: The injection sites owned by this subsystem.
PERSIST_SITES = frozenset((FaultSite.PERSIST_LOAD,
                           FaultSite.PERSIST_CORRUPT))


class TranslationMemo:
    """Digest-keyed persisted translations, consulted by the translator."""

    def __init__(self, stats=None, capture=True, lookup=True):
        self.stats = stats if stats is not None else PersistStats()
        #: encode-and-commit freshly translated fragments for saving
        self.capture = capture
        #: offer persisted records to the translator
        self.lookup = lookup
        self._preloaded = {}       # digest -> [record, ...]
        self._fresh = []           # committed this run, in commit order
        self._committed = set()    # their CRCs, for in-run dedup

    def preload(self, by_digest):
        """Adopt a store's ``{digest: [records]}`` map (copied: store
        loads may be shared through the process-level read cache)."""
        for digest, records in by_digest.items():
            self._preloaded.setdefault(digest, []).extend(records)

    def try_restore(self, translator, superblock):
        """Restore a persisted translation of ``superblock``, or None.

        On a hit the fragment is installed through the translator's
        normal cache-add path and the recorded cost charges are
        replayed, so the returned :class:`TranslationResult` leaves VM
        statistics exactly as a cold translation would have.  Any
        mismatch with the live chain context (or a malformed record) is
        a counted miss — the caller falls through to the cold pipeline.
        """
        if not self.lookup:
            return None
        candidates = self._preloaded.get(superblock_digest(superblock))
        if not candidates:
            self.stats.warm_misses += 1
            return None
        tcache = translator.tcache
        fragment = record = None
        with translator.telemetry.registry.timer("persist.restore").time():
            for candidate in candidates:
                try:
                    fragment = restore_fragment(
                        candidate, superblock, tcache, translator.fmt,
                        translator.n_accumulators)
                except RestoreMismatch:
                    self.stats.chain_mismatches += 1
                    continue
                except (KeyError, ValueError, TypeError, IndexError):
                    # a record that passed its CRC but does not decode —
                    # a generator bug, not a reason to fail the run
                    self.stats.corrupt_records += 1
                    continue
                record = candidate
                break
        if fragment is None:
            self.stats.warm_misses += 1
            return None
        cost = translator.cost
        for phase, units in record["charges"]:
            cost.charge(phase, units)
        cost.note_fragment(fragment.source_instr_count)
        with translator._phase("chaining"):
            tcache.add(fragment)       # TCacheFull propagates, as cold
        self.stats.warm_hits += 1
        usage = record["usage"]
        return TranslationResult(
            fragment, None,
            usage=None if usage is None else UsageCounts(usage))

    def encode(self, superblock, fragment, usage, charges, tcache):
        """Serialise a cold translation for later commit (pre-install)."""
        if not self.capture:
            return None
        return encode_record(superblock, fragment, usage, charges, tcache)

    def commit(self, record):
        """Adopt a record whose fragment was successfully installed."""
        if record is None:
            return
        crc = record_crc(record)
        if crc not in self._committed:
            self._committed.add(crc)
            self._fresh.append(record)

    def records(self):
        """The records committed this run, in commit order."""
        return list(self._fresh)

    def __repr__(self):
        return (f"TranslationMemo({len(self._preloaded)} digests "
                f"preloaded, {len(self._fresh)} fresh)")


class PersistSession:
    """One VM's fragment-store lifecycle (load at boot, save after run)."""

    def __init__(self, program, config, telemetry=None, injector=None):
        self.config = config
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self.stats = PersistStats()
        self.mode = config.persist_mode
        self.injector = self._choose_injector(config, injector)
        if self.telemetry.enabled:
            self.telemetry.persist_stats = self.stats
        self.code_sha256 = program_digest(program)
        self.config_fields = config.key_fields()
        self.key = store_key(self.code_sha256, config)
        self.store = FragmentStore(str(config.persist_path),
                                   stats=self.stats,
                                   injector=self.injector)
        load = self.mode in ("load", "both")
        save = self.mode in ("save", "both")
        self.memo = TranslationMemo(self.stats, capture=save, lookup=load)
        if load:
            with self.telemetry.registry.timer("persist.load").time():
                self.memo.preload(self.store.load(
                    self.key, self.code_sha256, self.config_fields))

    @staticmethod
    def _choose_injector(config, vm_injector):
        """Pick the fault injector consulted at the persist sites.

        A ``VMConfig.faults`` plan naming a persist site shares the VM's
        injector (one schedule across all sites — chaos runs are already
        excluded from result caching).  Otherwise the
        ``REPRO_PERSIST_FAULTS`` environment overlay builds a *private*
        injector with null telemetry, so externally injected store
        faults never leak events into deterministic run summaries.
        """
        if vm_injector is not None and vm_injector.enabled and \
                vm_injector.plan.sites() & PERSIST_SITES:
            return vm_injector
        spec = os.environ.get(ENV_PERSIST_FAULTS)
        if spec:
            seed = int(os.environ.get(ENV_PERSIST_FAULT_SEED, "0"), 0)
            return FaultInjector(FaultPlan.parse(spec, seed=seed))
        return NULL_INJECTOR

    def save(self):
        """Write this run's fresh records back to the store (idempotent,
        best-effort: failures are counted, never raised)."""
        if self.mode not in ("save", "both"):
            return None
        records = self.memo.records()
        if not records:
            return None
        with self.telemetry.registry.timer("persist.save").time():
            return self.store.save(self.key, records, self.code_sha256,
                                   self.config_fields)

    def __repr__(self):
        return (f"PersistSession(key={self.key[:12]}..., "
                f"mode={self.mode!r})")
