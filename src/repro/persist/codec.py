"""Fragment (de)serialisation for the persistent translation cache.

What gets persisted is the translator's **pre-install codegen output**:
the fragment body, exits and PEI table exactly as :class:`CodeGenerator`
produced them, *before* ``TranslationCache.add`` laid the body out and
applied chaining patches (``add`` can patch a fragment's own self-loop
exit, so a post-install snapshot would bake in absolute addresses that
can never validate on restore).  Layout addresses, checksums and
compiled closures are all rebuilt by the normal install path.

Codegen consults the translation cache only to decide, per direct exit
and per ``push-dual-address-RAS``, whether the target V-PC is already
translated.  A record therefore encodes every I-address ``target`` as a
symbolic ``tref`` — ``["vpc", v]`` (the entry address of the fragment
translated for ``v``) or ``["dispatch"]`` — and restore *validates* the
recorded chain context against the live cache: every ``tref`` must
resolve, and every exit recorded as unpatched must still find its
target untranslated.  When validation holds, the restored fragment is
bit-identical to what the cold pipeline would generate in the same
cache state; when it fails, the caller falls back to cold translation
(a counted miss, never an error).

Records are keyed by :func:`superblock_digest` — a content hash of the
captured path *including each entry's raw instruction word*.  The store
key pins the pristine guest image, but guests can now rewrite their own
code at run time (the SMC surface), so the path shape alone no longer
determines the translation: two captures of the same ``(vpc, taken,
next_vpc)`` sequence may execute different words.  Folding the words in
makes aliasing impossible — a rewritten instruction yields a different
digest, and the stale record simply never matches again.
"""

import hashlib
import json

from repro.ildp_isa.instruction import IInstruction
from repro.ildp_isa.opcodes import IOp
from repro.tcache.fragment import ExitKind, Fragment, FragmentExit
from repro.translator.usage import ValueClass


class RestoreMismatch(Exception):
    """The record's chain context does not match the live cache."""


#: Serialisable constructor fields with their defaults; fields at their
#: default are omitted from records.  ``iop`` is always present and
#: ``target`` is carried symbolically as ``tref`` (see module docstring).
INSTR_FIELD_DEFAULTS = dict(
    op=None, acc=None, gpr=None, gpr2=None, imm=0, islit=False,
    src_a=None, src_b=None, addr_src=None, data_src=None, cond_src=None,
    dest_gpr=None, operational=False, mem_size=8, mem_signed=False,
    vtarget=None, vpc=None)


def canonical_json(value):
    """Canonical compact JSON — the digest/CRC preimage format."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def superblock_digest(superblock):
    """Content hash (hex SHA-256) identifying a captured superblock."""
    payload = [
        superblock.entry_vpc,
        superblock.end_reason.value,
        superblock.continuation_vpc,
        [[entry.vpc, bool(entry.taken), entry.next_vpc, entry.word]
         for entry in superblock.entries],
    ]
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")).hexdigest()


def _encode_instr(instr, tcache):
    """One body instruction as a compact JSON-able dict, or None when the
    instruction cannot be persisted (a target pointing at neither the
    dispatch code nor a fragment entry — never produced by codegen, but
    bailing out beats writing an unrestorable record)."""
    fields = {"iop": instr.iop.value}
    for name, default in INSTR_FIELD_DEFAULTS.items():
        value = getattr(instr, name)
        if value != default:
            fields[name] = value
    if instr.strand_start:
        fields["ss"] = True
    if instr.target is not None:
        if instr.target == tcache.dispatch_address:
            fields["tref"] = ["dispatch"]
        else:
            target = tcache.fragment_at(instr.target)
            if target is None:
                return None
            fields["tref"] = ["vpc", target.entry_vpc]
    return fields


#: Positional-argument order of :class:`IInstruction` after ``iop`` and
#: before ``target`` — the template builder freezes each record body
#: instruction into an args tuple in this order.
_ARG_FIELDS = ("op", "acc", "gpr", "gpr2", "imm", "islit", "src_a",
               "src_b", "addr_src", "data_src", "cond_src", "dest_gpr",
               "operational", "mem_size", "mem_signed")

#: Process-level record -> body template cache.  A long-lived server (or
#: the warm-start benchmark) restores the same store records on every VM
#: boot; the JSON field dicts only need decoding into args tuples once.
#: Keyed by the record object's identity — safe because each entry holds
#: a strong reference to its record, so the id cannot be recycled while
#: the entry lives.  Templates are immutable (tuples all the way down);
#: the per-boot work is reduced to one ``IInstruction(*args)`` call per
#: instruction plus the live-cache tref/exit validation.
_TEMPLATE_CACHE = {}
_TEMPLATE_CACHE_LIMIT = 4096


class _RecordTemplate:
    """A record body pre-decoded for fast re-instantiation."""

    __slots__ = ("body", "ras_checks")

    def __init__(self, record):
        body = []
        for fields in record["body"]:
            args = (IOp(fields["iop"]),) + tuple(
                fields.get(name, INSTR_FIELD_DEFAULTS[name])
                for name in _ARG_FIELDS) + (
                None,                                    # target
                fields.get("vtarget"), fields.get("vpc"))
            tref = fields.get("tref")
            body.append((args, bool(fields.get("ss")),
                         None if tref is None else tuple(tref)))
        self.body = tuple(body)
        #: return points of ``push-dual-RAS`` instructions recorded
        #: *without* a resolved target: restore must re-check that each
        #: is still untranslated in the live cache
        self.ras_checks = tuple(
            fields["vtarget"] for fields in record["body"]
            if fields["iop"] == IOp.PUSH_RAS.value
            and "tref" not in fields)


def _record_template(record):
    key = id(record)
    cached = _TEMPLATE_CACHE.get(key)
    if cached is not None and cached[0] is record:
        return cached[1]
    template = _RecordTemplate(record)
    while len(_TEMPLATE_CACHE) >= _TEMPLATE_CACHE_LIMIT:
        _TEMPLATE_CACHE.pop(next(iter(_TEMPLATE_CACHE)))
    _TEMPLATE_CACHE[key] = (record, template)
    return template


def _encode_recovery(recovery):
    if recovery is None:
        return None
    return [[reg, list(spec)] for reg, spec in sorted(recovery.items())]


def _restore_recovery(encoded):
    if encoded is None:
        return None
    return {reg: tuple(spec) for reg, spec in encoded}


def encode_record(superblock, fragment, usage, charges, tcache):
    """Serialise one pre-install fragment into a JSON-able record.

    ``charges`` is the ``[(phase, units), ...]`` the cold pipeline
    charged its cost model while producing the fragment; a warm restore
    replays it so translation-cost accounting stays bit-identical.
    Returns None when the fragment is not persistable.
    """
    body = []
    for instr in fragment.body:
        fields = _encode_instr(instr, tcache)
        if fields is None:
            return None
        body.append(fields)
    return {
        "digest": superblock_digest(superblock),
        "entry_vpc": fragment.entry_vpc,
        "source_instr_count": fragment.source_instr_count,
        "premature_terminations": fragment.premature_terminations,
        "body": body,
        "exits": [[exit_record.kind.value, exit_record.vtarget,
                   exit_record.instr_index, bool(exit_record.patched)]
                  for exit_record in fragment.exits],
        "pei": [[index, vpc, _encode_recovery(recovery)]
                for index, vpc, recovery in fragment.pei_table],
        "usage": None if usage is None else
        {vclass.value: count
         for vclass, count in usage.class_counts().items()},
        "charges": [[phase, units] for phase, units in charges],
    }


def restore_fragment(record, superblock, tcache, fmt, n_accumulators):
    """Rebuild a fragment from ``record``, validating chain context.

    Raises :class:`RestoreMismatch` when the record was generated under
    a different translation-cache state than the live one — the caller
    treats that as a miss and runs the cold pipeline.  On success the
    returned fragment is exactly what cold codegen would emit now and is
    ready for ``TranslationCache.add``.
    """
    template = _record_template(record)
    body = []
    dispatch_address = tcache.dispatch_address
    for args, strand_start, tref in template.body:
        instr = IInstruction(*args)
        if strand_start:
            instr.strand_start = True
        if tref is not None:
            if tref[0] == "dispatch":
                instr.target = dispatch_address
            else:
                fragment = tcache.lookup(tref[1])
                if fragment is None:
                    raise RestoreMismatch(
                        f"tref target V:{tref[1]:#x} not translated")
                instr.target = fragment.entry_address()
        body.append(instr)
    exits = []
    for kind, vtarget, instr_index, patched in record["exits"]:
        if not patched and vtarget is not None and \
                tcache.lookup(vtarget) is not None:
            # the record was made before vtarget was translated; codegen
            # would chain this exit directly today
            raise RestoreMismatch(
                f"unpatched exit target V:{vtarget:#x} is now translated")
        exits.append(FragmentExit(ExitKind(kind), vtarget, instr_index,
                                  patched=bool(patched)))
    for vtarget in template.ras_checks:
        if tcache.lookup(vtarget) is not None:
            raise RestoreMismatch(
                "push-RAS return point is now translated")
    pei_table = [(index, vpc, _restore_recovery(recovery))
                 for index, vpc, recovery in record["pei"]]
    return Fragment(
        entry_vpc=record["entry_vpc"],
        fmt=fmt,
        body=body,
        exits=exits,
        pei_table=pei_table,
        source_instr_count=record["source_instr_count"],
        n_accumulators=n_accumulators,
        premature_terminations=record["premature_terminations"],
        superblock=superblock,
    )


class UsageCounts:
    """Restored stand-in for a :class:`UsageResult` in statistics.

    ``VMStats.note_translation`` only asks a translation's usage
    analysis for :meth:`class_counts`; a warm restore rebuilds that
    histogram from the record instead of re-running the analysis.
    """

    __slots__ = ("_counts",)

    def __init__(self, encoded):
        self._counts = {ValueClass(value): count
                        for value, count in encoded.items()}

    def class_counts(self):
        return dict(self._counts)
