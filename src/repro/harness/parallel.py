"""Parallel, memoizing execution of harness run points.

:class:`PointRunner` is the single entry point the experiment drivers use:

* duplicate points inside one batch are computed once and shared;
* points answered by the :class:`~repro.harness.resultcache.ResultCache`
  never reach a VM at all;
* the remaining points run serially (``workers=1``) or fan out over a
  ``concurrent.futures.ProcessPoolExecutor``.  Every run point is an
  independent, deterministic pure function (see
  :mod:`repro.harness.runpoints`), so the three execution strategies are
  interchangeable — the equivalence tests assert bit-identical tables.

If the process pool cannot be created or dies (restricted sandboxes,
missing semaphores), the runner falls back to serial execution and records
the fact in its report rather than failing the experiment.
"""

import os
import time

from repro.faults.inject import FaultInjector, NULL_INJECTOR
from repro.faults.plan import FaultPlan, FaultSite
from repro.harness.runpoints import execute_point
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import merge_summary
from repro.obs.trace import NULL_TRACER


class WorkerCrash(Exception):
    """A pool worker died before returning its chunk (fault injection)."""


class WorkerTimeout(Exception):
    """A pool worker stalled past its deadline (fault injection)."""


def _execute_chunk(points, fail=None):
    """Run one worker's whole share of a batch as a single pool task.

    Each summary is paired with the ``perf_counter`` readings around its
    run: on the platforms we run on that clock is system-wide monotonic,
    so the parent process can place worker runs on the shared span
    timeline (one trace track per worker).

    ``fail`` is the fault-injection hook: ``"crash"``/``"timeout"``
    (decided deterministically by the parent's injector before dispatch)
    make the worker die before touching any point, exercising the
    retry/requeue path without real process murder or real deadlines.
    """
    if fail == "crash":
        raise WorkerCrash(f"injected crash before {len(points)} points")
    if fail == "timeout":
        raise WorkerTimeout(f"injected timeout before {len(points)} points")
    results = []
    for point in points:
        started = time.perf_counter()
        summary = execute_point(point)
        results.append((summary, started, time.perf_counter()))
    return results


class RunObserver:
    """Per-point lifecycle callbacks a :class:`PointRunner` reports to.

    The default implementation is all no-ops, so observers override
    only what they need.  Callbacks fire on the thread executing the
    batch (the serve batcher's executor thread); observers living on an
    event loop must hand off with ``call_soon_threadsafe``.  Points run
    in pool worker *processes* are reported post-hoc by the parent when
    the chunk returns.
    """

    def on_cache_hit(self, point):
        """``point`` was answered by the result cache (no VM ran)."""

    def on_point_start(self, point):
        """``point`` is about to execute on the serial path."""

    def on_point_done(self, point, summary):
        """``point`` finished executing; ``summary`` is its result."""


class RunReport:
    """Counters accumulated across one runner's batches."""

    def __init__(self):
        self.requested = 0
        self.unique = 0
        self.cache_hits = 0
        self.cache_corrupt = 0
        self.executed = 0
        self.vm_seconds = 0.0
        self.wall_seconds = 0.0
        self.pool_failures = 0
        #: worker chunk dispatches that crashed or timed out and were
        #: retried on the pool
        self.worker_retries = 0
        #: run points requeued to the serial path after a worker
        #: exhausted its retries
        self.worker_requeued = 0

    def snapshot(self):
        """A plain-dict copy (for per-experiment deltas)."""
        return {
            "requested": self.requested,
            "unique": self.unique,
            "cache_hits": self.cache_hits,
            "cache_corrupt": self.cache_corrupt,
            "executed": self.executed,
            "vm_seconds": self.vm_seconds,
            "wall_seconds": self.wall_seconds,
            "pool_failures": self.pool_failures,
            "worker_retries": self.worker_retries,
            "worker_requeued": self.worker_requeued,
        }

    def render(self):
        """One human-readable line for CLI output."""
        line = (f"run points: {self.requested} requested, "
                f"{self.unique} unique, {self.cache_hits} cache hits, "
                f"{self.executed} executed; "
                f"vm time {self.vm_seconds:.1f}s, "
                f"wall {self.wall_seconds:.1f}s")
        if self.cache_corrupt:
            line += f"; {self.cache_corrupt} corrupt cache entries"
        if self.worker_retries or self.worker_requeued:
            line += (f"; worker retries {self.worker_retries}, "
                     f"requeued {self.worker_requeued}")
        if self.pool_failures:
            line += f" (pool unavailable, ran serially x{self.pool_failures})"
        return line

    def __repr__(self):
        return f"RunReport({self.render()})"


def _delta(before, after):
    return {key: after[key] - before[key] for key in after}


class PointRunner:
    """Executes batches of run points with caching and optional workers."""

    def __init__(self, workers=1, cache=None, tracer=None, faults=None,
                 fault_seed=0, max_worker_retries=2, observer=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_worker_retries < 0:
            raise ValueError("max_worker_retries must be >= 0")
        self.workers = workers
        self.cache = cache
        #: harness-level fault plan (``worker_crash``/``worker_timeout``
        #: sites); the shared no-op twin when unset, so the fault-free
        #: dispatch path pays one constant-False call per worker chunk
        self.injector = FaultInjector(
            FaultPlan.parse(faults, seed=fault_seed)) if faults \
            else NULL_INJECTOR
        #: bounded retries per worker chunk before its points are
        #: requeued to the serial path
        self.max_worker_retries = max_worker_retries
        #: span tracer for the harness timeline: every executed run point
        #: becomes a span (parallel workers land on their own tracks) and
        #: every cache hit an instant marker.  Defaults to the no-op twin.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: optional :class:`RunObserver` receiving per-point lifecycle
        #: callbacks (the serve streaming layer's request-lifecycle tap)
        self.observer = observer
        self.report = RunReport()
        #: report delta for the most recent :meth:`run` call
        self.last_report = None
        #: telemetry blocks from every unique summary this runner has
        #: produced, folded into one registry (pool workers cannot share
        #: a live registry, so their summaries are merged on the way
        #: back; cached summaries merge the telemetry recorded when the
        #: entry was first computed)
        self.telemetry = MetricsRegistry()

    def run(self, points):
        """Execute ``points``; returns their summaries in input order."""
        points = list(points)
        before = self.report.snapshot()
        started = time.perf_counter()
        corrupt_before = self.cache.corrupt if self.cache is not None else 0

        # de-duplicate within the batch
        order = []            # unique points, first-seen order
        index_of = {}         # identity -> position in `order`
        slots = []            # for each input point: its unique index
        for point in points:
            identity = point.identity()
            if identity not in index_of:
                index_of[identity] = len(order)
                order.append(point)
            slots.append(index_of[identity])

        summaries = [None] * len(order)
        pending = []
        for index, point in enumerate(order):
            cached = self.cache.get(point) if self.cache is not None \
                else None
            if cached is not None:
                summaries[index] = cached
                self.report.cache_hits += 1
                self.tracer.instant(f"cache-hit {point.label()}",
                                    cat="harness")
                if self.observer is not None:
                    self.observer.on_cache_hit(point)
            else:
                pending.append(index)

        if pending:
            self._execute_pending(order, summaries, pending)

        for summary in summaries:
            if "telemetry" in summary:
                merge_summary(self.telemetry, summary["telemetry"],
                              host=summary.get("telemetry_host"))

        self.report.requested += len(points)
        self.report.unique += len(order)
        if self.cache is not None:
            self.report.cache_corrupt += self.cache.corrupt - corrupt_before
        self.report.wall_seconds += time.perf_counter() - started
        self.last_report = _delta(before, self.report.snapshot())
        return [summaries[slot] for slot in slots]

    # -- execution strategies -------------------------------------------------

    def _execute_pending(self, order, summaries, pending):
        executed = None
        if self.workers > 1 and len(pending) > 1:
            executed = self._run_pool([order[i] for i in pending])
        if executed is None:
            executed = [None] * len(pending)
        # the serial path fills everything the pool didn't produce: the
        # whole batch when no pool ran, or the requeued points of workers
        # that exhausted their retries
        for slot, i in enumerate(pending):
            if executed[slot] is None:
                point = order[i]
                if self.observer is not None:
                    self.observer.on_point_start(point)
                with self.tracer.span(point.label(), cat="harness",
                                      kind=point.kind,
                                      budget=point.budget):
                    executed[slot] = execute_point(point)
        for index, summary in zip(pending, executed):
            summaries[index] = summary
            if self.observer is not None:
                self.observer.on_point_done(order[index], summary)
            self.report.executed += 1
            self.report.vm_seconds += summary.get("elapsed", 0.0)
            if self.cache is not None:
                self.cache.put(order[index], summary)

    def _run_pool(self, points):
        """Fan out over a process pool; returns None to run serially.

        Points are chunked round-robin so each worker receives *one*
        task covering its whole share of the batch: process startup,
        pickling and scheduling overhead is paid once per worker rather
        than once per point.  The worker count is clamped to the
        machine's cores — a pool wider than the machine (or any pool on
        a single-core machine) only adds overhead, which is how an
        earlier BENCH_harness.json ended up with four workers slower
        than serial.

        A chunk whose worker crashes or times out (fault injection) is
        retried up to ``max_worker_retries`` times; past that its points
        are requeued — returned as ``None`` holes that
        ``_execute_pending`` fills on the serial path, so an injected
        fault can delay results but never lose them.
        """
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        cores = os.cpu_count() or 1
        max_workers = min(self.workers, len(points), cores)
        if max_workers < 2:
            return None     # a 1-worker pool is pure overhead
        chunks = [points[i::max_workers] for i in range(max_workers)]
        chunk_results = [None] * len(chunks)
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                remaining = list(range(len(chunks)))
                attempts = [0] * len(chunks)
                while remaining:
                    futures = [
                        (worker, pool.submit(_execute_chunk, chunks[worker],
                                             self._worker_fault(worker)))
                        for worker in remaining]
                    retry = []
                    for worker, future in futures:
                        try:
                            chunk_results[worker] = future.result()
                        except (WorkerCrash, WorkerTimeout):
                            attempts[worker] += 1
                            if attempts[worker] > self.max_worker_retries:
                                self.report.worker_requeued += \
                                    len(chunks[worker])
                            else:
                                self.report.worker_retries += 1
                                retry.append(worker)
                    remaining = retry
        except (OSError, ImportError, PermissionError, BrokenProcessPool):
            self.report.pool_failures += 1
            return None
        summaries = [None] * len(points)
        good_chunks = []
        good_results = []
        for start, chunk_result in enumerate(chunk_results):
            if chunk_result is None:
                continue        # requeued: left for the serial path
            for offset, (summary, _t0, _t1) in enumerate(chunk_result):
                summaries[start + offset * max_workers] = summary
            good_chunks.append(chunks[start])
            good_results.append(chunk_result)
        self._note_pool_spans(good_chunks, good_results)
        return summaries

    def _worker_fault(self, worker):
        """Consult the harness fault plan before dispatching a chunk.

        Returns the failure mode the worker should simulate (``"crash"``
        / ``"timeout"``), or None on the (default) healthy path.
        """
        if self.injector.fire(FaultSite.WORKER_CRASH, worker=worker):
            return "crash"
        if self.injector.fire(FaultSite.WORKER_TIMEOUT, worker=worker):
            return "timeout"
        return None

    def _note_pool_spans(self, chunks, chunk_results):
        """Place each worker's runs on its own trace track.

        Workers report raw ``perf_counter`` readings (system-wide
        monotonic), so their spans share the parent tracer's timeline;
        track ``tid`` = worker index + 1 keeps them visually separate
        from the runner's own (serial) track 0.
        """
        if not self.tracer.enabled:
            return
        for worker, (chunk, results) in enumerate(zip(chunks,
                                                      chunk_results)):
            tid = worker + 1
            self.tracer.set_thread_name(tid, f"worker-{tid}")
            for point, (summary, started, ended) in zip(chunk, results):
                self.tracer.add_complete(
                    point.label(), started, ended, tid=tid,
                    args={"kind": point.kind, "budget": point.budget})
