"""Declarative run points: the unit of work the experiment harness runs.

Every figure/table experiment boils down to a set of independent
``(workload, config, budget)`` VM or pure-interpreter runs, each followed
by a handful of trace-derived measurements (timing-model IPC, predictor
statistics, instruction-mix counts).  Experiments declare these as
:class:`RunPoint` values — plain, hashable, picklable data — and hand them
to :class:`repro.harness.parallel.PointRunner`, which can execute them
serially, fan them out over a process pool, or answer them from the
persistent result cache.

The contract that makes caching and parallelism safe is that
:func:`execute_point` is a *pure function* of the run point: the whole
simulator is deterministic (no wall clock, no global random state), so two
executions of the same point produce the same :class:`RunSummary` fields,
bit for bit — except the wall-clock ``elapsed`` and ``telemetry_host``
entries, which are process-local by construction.  Summaries carry only JSON-able scalars and small dicts —
never live VM objects or traces — so a summary computed in a worker
process, read back from the cache, or computed inline is indistinguishable.
"""

import time

from repro.harness.runner import DEFAULT_BUDGET, run_original, run_vm
from repro.translator.usage import ValueClass
from repro.uarch.config import MachineConfig, ildp_config
from repro.uarch.ildp import ILDPModel
from repro.uarch.predictors import BranchUnit
from repro.uarch.superscalar import SuperscalarModel
from repro.vm.config import VMConfig

#: Bump when the summary layout or any run semantics change; part of every
#: cache key, so stale on-disk entries can never be returned.
#: 2: VM summaries grew the ``telemetry`` / ``telemetry_host`` blocks.
#: 3: VM summaries grew the ``resilience`` block (graceful-degradation
#: counters), and fault-injection fields joined ``VMConfig`` (excluded
#: from the key, but the bump guarantees no pre-faults entry survives).
#: 4: the default execution engine became the tier-2 jit.  Architected
#: results and ``VMStats`` are engine-identical (so ``exec_engine`` stays
#: out of the key), but the deterministic ``telemetry`` block now carries
#: ``jit.*`` counters and ``jit_promoted`` events that pre-jit cache
#: entries lack.
#: 5: the hostile-guest work grew ``VMStats.resilience()`` (smc/mmu
#: counters inside every cached summary's ``resilience`` block) and made
#: superblock digests content-aware; pre-MMU entries must not replay.
SCHEMA_VERSION = 5


class EvalSpec:
    """One named trace-derived measurement with frozen parameters."""

    __slots__ = ("name", "params")

    def __init__(self, name, **params):
        if name not in EVALUATORS:
            raise KeyError(f"unknown evaluator {name!r}")
        self.name = name
        self.params = tuple(sorted(params.items()))

    def key(self):
        """Stable string identity, used as the summary's ``evals`` key."""
        if not self.params:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.name}({inner})"

    def __eq__(self, other):
        return isinstance(other, EvalSpec) and \
            (self.name, self.params) == (other.name, other.params)

    def __hash__(self):
        return hash((self.name, self.params))

    def __repr__(self):
        return f"EvalSpec({self.key()})"


def ildp_ipc(pes=8, comm=0, dcache_small=False, steering="dependence",
             perfect_bp=False, perfect_dcache=False):
    """ILDP timing model; yields ``{"ipc", "native_ipc"}``."""
    return EvalSpec("ildp_ipc", pes=pes, comm=comm,
                    dcache_small=dcache_small, steering=steering,
                    perfect_bp=perfect_bp, perfect_dcache=perfect_dcache)


def superscalar_ipc(use_ras=True):
    """Out-of-order superscalar timing model; yields the V-ISA IPC."""
    return EvalSpec("superscalar_ipc", use_ras=use_ras)


def mispredictions():
    """Branch-prediction stack alone; mispredictions per 1,000 V-ISA
    instructions (Fig. 4)."""
    return EvalSpec("mispredictions")


def instruction_mix():
    """Dynamic instruction-mix counts for the characterization table."""
    return EvalSpec("instruction_mix")


class RunPoint:
    """One independent harness run, as data.

    ``kind`` is ``"vm"`` (co-designed VM) or ``"original"`` (pure
    interpretation, the paper's unmodified-binary configuration).
    ``config`` is a tuple of sorted ``(field, value)`` pairs from
    :meth:`VMConfig.key_fields` — primitives only, so points hash, pickle
    and serialise to JSON without help.
    """

    __slots__ = ("kind", "workload", "scale", "budget", "config", "evals")

    def __init__(self, kind, workload, scale, budget, config, evals):
        self.kind = kind
        self.workload = workload
        self.scale = scale
        self.budget = budget
        self.config = config
        self.evals = tuple(evals)

    @classmethod
    def vm(cls, workload, config=None, scale=None, budget=DEFAULT_BUDGET,
           evals=()):
        """A co-designed-VM run point."""
        config = config if config is not None else VMConfig()
        fields = tuple(sorted(config.key_fields().items()))
        return cls("vm", workload, scale, budget, fields, evals)

    @classmethod
    def original(cls, workload, scale=None, budget=DEFAULT_BUDGET,
                 evals=()):
        """A pure-interpretation ("original binary") run point."""
        return cls("original", workload, scale, budget, None, evals)

    @classmethod
    def fuzz(cls, seed, index, max_insns=60, chaos=False,
             budget=200_000, telemetry=False, engines=None,
             hostile=False):
        """One generated-program oracle run (see :mod:`repro.fuzz`).

        ``config`` reuses the sorted-pair convention but carries the
        generator parameters instead of ``VMConfig`` fields; the
        generator version keys the cache so corpus-affecting generator
        changes can never replay stale summaries.  The kind's key space
        is disjoint from ``"vm"``/``"original"``, so no schema bump is
        needed.  ``engines`` is the oracle engine stage's comparison
        axis (``None`` selects the oracle's default).
        """
        from repro.fuzz.gen import GENERATOR_VERSION
        from repro.fuzz.oracle import ENGINE_AXIS

        engines = tuple(engines) if engines is not None else ENGINE_AXIS
        fields = (("chaos", bool(chaos)), ("engines", engines),
                  ("hostile", bool(hostile)), ("index", index),
                  ("max_insns", max_insns), ("seed", seed),
                  ("telemetry", bool(telemetry)),
                  ("version", GENERATOR_VERSION))
        return cls("fuzz", f"fuzz[{seed}/{index}]", None, budget, fields,
                   ())

    def key_dict(self):
        """Canonical JSON-able identity (the cache key's preimage)."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "workload": self.workload,
            "scale": self.scale,
            "budget": self.budget,
            "config": None if self.config is None else dict(self.config),
            "evals": [spec.key() for spec in self.evals],
        }

    def identity(self):
        """Hashable identity tuple (for de-duplication within a batch)."""
        return (self.kind, self.workload, self.scale, self.budget,
                self.config, self.evals)

    def label(self):
        """Short human-readable identity (trace span names, logs)."""
        if self.kind == "original":
            return f"{self.workload} (original)"
        fields = dict(self.config)
        if self.kind == "fuzz":
            return self.workload + (" +chaos" if fields.get("chaos")
                                    else "")
        return (f"{self.workload} ({fields.get('fmt')}/"
                f"{fields.get('policy')})")

    def __eq__(self, other):
        return isinstance(other, RunPoint) and \
            self.identity() == other.identity()

    def __hash__(self):
        return hash(self.identity())

    def __repr__(self):
        return (f"RunPoint({self.kind}, {self.workload}, "
                f"budget={self.budget}, {len(self.evals)} evals)")


# -- trace evaluators ---------------------------------------------------------

def _eval_ildp_ipc(params, trace):
    machine = ildp_config(params["pes"], params["comm"],
                          dcache_small=params["dcache_small"])
    machine.steering = params["steering"]
    machine.perfect_prediction = params["perfect_bp"]
    machine.perfect_dcache = params["perfect_dcache"]
    result = ILDPModel(machine).run(trace)
    return {"ipc": result.ipc, "native_ipc": result.native_ipc}


def _eval_superscalar_ipc(params, trace):
    machine = MachineConfig("superscalar-ooo",
                            use_conventional_ras=params["use_ras"])
    return SuperscalarModel(machine).run(trace).ipc


def _eval_mispredictions(params, trace):
    return count_mispredictions(trace)


def _eval_instruction_mix(params, trace):
    counts = {"total": len(trace), "load": 0, "store": 0, "cond": 0,
              "callret": 0, "indirect": 0}
    for record in trace:
        if record.op_class == "load":
            counts["load"] += 1
        elif record.op_class == "store":
            counts["store"] += 1
        elif record.btype == "cond":
            counts["cond"] += 1
        elif record.btype in ("call", "ret"):
            counts["callret"] += 1
        elif record.btype in ("call_ind", "indirect"):
            counts["indirect"] += 1
    return counts


def count_mispredictions(trace, machine_config=None):
    """Feed a trace through the branch-prediction stack alone; returns
    mispredictions per 1,000 V-ISA instructions.

    Normalising by V-ISA instructions (not machine instructions) keeps the
    comparison across chaining schemes apples-to-apples: ``no_pred``'s
    20-instruction dispatch bodies would otherwise dilute its own
    misprediction rate.
    """
    unit = BranchUnit(machine_config if machine_config is not None
                      else MachineConfig("predictor-only"))
    for record in trace:
        unit.note_instruction(record.v_weight)
        if record.btype is not None:
            unit.process(record)
    return unit.stats.per_kilo_instructions()


EVALUATORS = {
    "ildp_ipc": _eval_ildp_ipc,
    "superscalar_ipc": _eval_superscalar_ipc,
    "mispredictions": _eval_mispredictions,
    "instruction_mix": _eval_instruction_mix,
}


# -- execution ----------------------------------------------------------------

def execute_point(point):
    """Run one point and distil it into a JSON-able summary dict.

    This is the function parallel workers call; it must stay importable at
    module top level and must not return live simulator objects.
    """
    started = time.perf_counter()
    if point.kind == "original":
        summary = _execute_original(point)
    elif point.kind == "vm":
        summary = _execute_vm(point)
    elif point.kind == "fuzz":
        # lazy import: the fuzz subsystem is optional for ordinary
        # experiment runs and must not widen their import footprint
        from repro.fuzz.oracle import execute_fuzz_point
        summary = execute_fuzz_point(point)
    else:
        raise ValueError(f"unknown run-point kind {point.kind!r}")
    summary["elapsed"] = time.perf_counter() - started
    return summary


def _base_summary(point):
    return {
        "kind": point.kind,
        "workload": point.workload,
        "scale": point.scale,
        "budget": point.budget,
        "evals": {},
    }


def _run_evals(summary, point, trace):
    for spec in point.evals:
        summary["evals"][spec.key()] = \
            EVALUATORS[spec.name](dict(spec.params), trace)


def _execute_original(point):
    trace, interpreter = run_original(point.workload, scale=point.scale,
                                      budget=point.budget)
    summary = _base_summary(point)
    summary.update({
        "committed": interpreter.instruction_count,
        "committed_nonnop": sum(record.v_weight for record in trace),
        "console": interpreter.console_text(),
        "state": {"pc": interpreter.state.pc,
                  "regs": list(interpreter.state.regs)},
        "trace_len": len(trace),
    })
    _run_evals(summary, point, trace)
    return summary


def _execute_vm(point):
    config = VMConfig.from_dict(dict(point.config))
    needs_trace = bool(point.evals)
    result = run_vm(point.workload, config, scale=point.scale,
                    budget=point.budget, collect_trace=needs_trace,
                    telemetry=True)
    vm, stats, tcache = result.vm, result.stats, result.tcache
    cost = vm.cost_model
    fragments = tcache.fragments
    source_instrs = sum(f.source_instr_count for f in fragments)
    usage = stats.dynamic_usage_histogram(tcache)

    summary = _base_summary(point)
    summary.update({
        "committed": stats.total_v_instructions(),
        "committed_nonnop": stats.committed_v_instructions(),
        "console": vm.console_text(),
        "state": {"pc": vm.state.pc, "regs": list(vm.state.regs)},
        "halted": vm.halted,
        "trace_len": len(result.trace) if result.trace is not None else None,
        "stats": {
            "interpreted": stats.interpreted_instructions,
            "translated_v": stats.source_instructions_executed,
            "iinstructions": stats.iinstructions_executed,
            "dispatch_instructions": stats.dispatch_instructions,
            "dynamic_expansion": stats.dynamic_expansion(),
            "copy_pct": stats.copy_percentage(),
            "static_expansion": stats.static_expansion(tcache),
            "fragments": stats.fragments_created,
            "ras_hit_rate": stats.ras_hit_rate(),
            "premature_terminations": stats.premature_terminations,
            "interpretation_overhead": stats.interpretation_overhead(),
            "traps_delivered": stats.traps_delivered,
            "tcache_flushes": stats.tcache_flushes,
        },
        "tcache": {
            "fragments": len(fragments),
            "source_instructions": source_instrs,
            "code_bytes": tcache.total_code_bytes(),
            "avg_superblock": (source_instrs / len(fragments)
                               if fragments else 0.0),
        },
        # graceful-degradation counters; all zero here (run points are
        # reconstructed fault-free by design — see VMConfig.key_fields)
        # but the block keeps harness summaries uniform with chaos runs
        "resilience": stats.resilience(),
        "cost": {
            "per_translated_instruction": cost.per_translated_instruction(),
            "phase_fractions": {phase: cost.phase_fraction(phase)
                                for phase in sorted(cost.weights)},
            "fragments": cost.fragments,
        },
        "profiler_candidates": vm.profiler.candidate_count(),
        "usage": {vclass.value: usage[vclass] for vclass in ValueClass},
        # deterministic telemetry: part of the bit-identical contract
        "telemetry": vm.telemetry.summary(),
        # process-local wall-clock measurements: like "elapsed", outside it
        "telemetry_host": vm.telemetry.host_summary(),
    })
    _run_evals(summary, point, result.trace if needs_trace else [])
    return summary
