"""Run the whole evaluation and emit a single markdown report.

``python -m repro report -o results.md`` regenerates every table and
figure of the paper (plus the ablations) in one pass and writes them as a
markdown document — the "reproduce everything" button.
"""

import time

from repro.harness import experiments
from repro.harness.parallel import PointRunner
from repro.obs.trace import NULL_TRACER

#: (experiment module name, paper anchor) in presentation order.
REPORT_SECTIONS = (
    ("characterization", "Workload characterization"),
    ("overhead", "Section 4.2 — translation overhead"),
    ("fig4", "Fig. 4 — chaining and misprediction"),
    ("fig5", "Fig. 5 — straightened instruction count"),
    ("fig6", "Fig. 6 — code straightening and hardware RAS"),
    ("table2", "Table 2 — translated instruction statistics"),
    ("fig7", "Fig. 7 — output register usage"),
    ("fig8", "Fig. 8 — IPC comparison"),
    ("fig9", "Fig. 9 — machine-parameter sensitivity"),
    ("ablation_fusion", "Ablation — memory splitting vs fusion"),
    ("ablation_steering", "Ablation — strand steering"),
    ("ablation_accumulators", "Ablation — accumulator count"),
    ("ablation_idealism", "Ablation — idealisation knobs"),
)


def _markdown_table(result):
    lines = ["| " + " | ".join(str(h) for h in result.headers) + " |",
             "|" + "|".join("---" for _ in result.headers) + "|"]
    for row in result.rows():
        cells = [f"{value:.3f}" if isinstance(value, float) else str(value)
                 for value in row]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def generate_report(workloads=None, budget=60_000, sections=None,
                    progress=None, runner=None, tracer=None):
    """Run every experiment; returns the markdown text.

    All sections share one ``runner``, so identical run points requested
    by several experiments execute only once per report — and, with a
    cache attached, at most once ever.  ``tracer`` (defaulting to the
    runner's, else the no-op twin) wraps each section in a span, so a
    traced report shows experiments as the top level of the timeline
    with the runner's per-point spans nested inside.
    """
    runner = runner if runner is not None else PointRunner()
    if tracer is None:
        tracer = getattr(runner, "tracer", NULL_TRACER)
    chosen = sections if sections is not None else \
        [name for name, _title in REPORT_SECTIONS]
    titles = dict(REPORT_SECTIONS)
    parts = [
        "# Reproduction report — Kim & Smith, CGO 2003",
        "",
        f"Workloads: {'full suite' if workloads is None else ', '.join(workloads)}; "
        f"budget {budget:,} V-ISA instructions per configuration.",
        "",
    ]
    for name in chosen:
        module = getattr(experiments, name)
        started = time.time()
        with tracer.span(f"experiment.{name}", cat="report"):
            result = module.run(workloads=workloads, budget=budget,
                                runner=runner)
        elapsed = time.time() - started
        if progress is not None:
            progress(name, elapsed)
        parts.append(f"## {titles.get(name, name)}")
        parts.append("")
        parts.append(_markdown_table(result))
        if result.notes:
            parts.append("")
            for note in result.notes:
                parts.append(f"*{note}*")
        parts.append("")
    return "\n".join(parts)
