"""Shared run plumbing for the experiment drivers.

``run_vm`` / ``run_original`` are the low-level primitives: they execute
one workload and hand back live simulator objects.  The experiment
drivers do not call them directly any more — they declare
:class:`~repro.harness.runpoints.RunPoint` batches and hand them to a
:class:`~repro.harness.parallel.PointRunner`, which executes them through
:func:`~repro.harness.runpoints.execute_point` (itself built on the
primitives below), optionally in parallel worker processes and memoised
by the persistent :class:`~repro.harness.resultcache.ResultCache`.
"""

from repro.uarch.trace_utils import interpreter_trace
from repro.vm.config import VMConfig
from repro.vm.system import CoDesignedVM
from repro.workloads import get_workload

DEFAULT_BUDGET = 250_000

#: Process-global run lifecycle hooks: callables invoked as
#: ``hook(phase, workload, info)`` with phase ``"run_started"`` /
#: ``"run_finished"`` around every :func:`run_vm` execution.  This is
#: how the serve streaming layer announces a VM run the moment it
#: starts — before any summary exists — without threading a callback
#: through every caller.  Hooks run on the executing thread; a hook
#: that raises is dropped (observability must never fail a run).
_RUN_HOOKS = []


def add_run_hook(hook):
    """Install a ``(phase, workload, info_dict) -> None`` lifecycle hook."""
    _RUN_HOOKS.append(hook)


def remove_run_hook(hook):
    """Remove a previously installed hook (no error if already gone)."""
    try:
        _RUN_HOOKS.remove(hook)
    except ValueError:
        pass


def _notify_hooks(phase, workload, **info):
    for hook in list(_RUN_HOOKS):
        try:
            hook(phase, workload, info)
        except Exception:
            remove_run_hook(hook)


class RunResult:
    """One VM run: the VM (with stats/tcache) plus its committed trace."""

    def __init__(self, workload_name, config, vm):
        self.workload_name = workload_name
        self.config = config
        self.vm = vm
        self.stats = vm.stats
        self.trace = vm.trace
        self.tcache = vm.tcache

    def __repr__(self):
        return f"RunResult({self.workload_name}, {self.config})"


def run_vm(workload_name, config=None, scale=None, budget=DEFAULT_BUDGET,
           collect_trace=True, telemetry=None, trace=None):
    """Run one workload under the co-designed VM.

    ``telemetry`` overrides ``config.telemetry`` when not None (the
    harness forces it on so run summaries carry telemetry blocks; the
    CLI leaves the config's setting alone).  ``trace`` does the same for
    span tracing (``repro trace`` / ``--trace-out`` force it on).

    When the config carries no explicit ``persist_path``, the
    ``REPRO_PERSIST_DIR``/``REPRO_PERSIST_MODE`` environment overlay
    supplies one — how ``repro serve`` hands the shared fragment store
    to pool workers, which rebuild configs from ``key_fields`` (persist
    settings are deliberately not key fields).  Fresh translations are
    saved back to the store when the run ends, even on a trap.
    """
    import os

    workload = get_workload(workload_name)
    config = config if config is not None else VMConfig()
    overrides = {"collect_trace": collect_trace}
    if telemetry is not None:
        overrides["telemetry"] = telemetry
    if trace is not None:
        overrides["trace"] = trace
    if config.persist_path is None:
        from repro.persist.store import ENV_PERSIST_DIR, ENV_PERSIST_MODE

        env_dir = os.environ.get(ENV_PERSIST_DIR)
        if env_dir:
            overrides["persist_path"] = env_dir
            env_mode = os.environ.get(ENV_PERSIST_MODE)
            if env_mode:
                overrides["persist_mode"] = env_mode
    config = config.copy(**overrides)
    vm = CoDesignedVM(workload.program(scale), config)
    if _RUN_HOOKS:
        _notify_hooks("run_started", workload_name, budget=budget)
    try:
        vm.run(max_v_instructions=budget)
    finally:
        vm.persist_save()
        if _RUN_HOOKS:
            _notify_hooks("run_finished", workload_name,
                          committed=vm.stats.total_v_instructions(),
                          halted=vm.halted)
    return RunResult(workload_name, config, vm)


def run_original(workload_name, scale=None, budget=DEFAULT_BUDGET):
    """Run one workload under pure interpretation (the "original" binary).

    Returns ``(trace, interpreter)``.
    """
    workload = get_workload(workload_name)
    return interpreter_trace(workload.program(scale),
                             max_instructions=budget)
