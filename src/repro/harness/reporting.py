"""Plain-text table rendering for experiment results."""


def format_table(headers, rows, title=None):
    """Render a list-of-lists as an aligned text table."""
    columns = len(headers)
    texts = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in texts:
        for index in range(columns):
            widths[index] = max(widths[index], len(row[index]))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in texts:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


class ExperimentResult:
    """Headers + rows + provenance for one experiment."""

    def __init__(self, name, headers, rows, notes=None, run_report=None):
        self.name = name
        self.headers = headers
        self._rows = rows
        self.notes = notes or []
        #: Per-run timing / cache-hit counters from the PointRunner that
        #: produced the rows (a plain dict), or None.  Deliberately *not*
        #: part of :meth:`render`: the rendered table must stay
        #: byte-identical across serial, parallel and cached executions.
        self.run_report = run_report

    def rows(self):
        return list(self._rows)

    def row_for(self, workload_name):
        for row in self._rows:
            if row[0] == workload_name:
                return row
        raise KeyError(workload_name)

    def render(self):
        text = format_table(self.headers, self._rows, title=self.name)
        if self.notes:
            text += "\n" + "\n".join(f"  note: {note}"
                                     for note in self.notes)
        return text

    def __repr__(self):
        return f"ExperimentResult({self.name}, {len(self._rows)} rows)"
