"""Ablation: logical accumulator count (paper Section 4.1/4.5).

The paper settled on four logical accumulators, observing that "few
strands must be prematurely terminated".  This ablation sweeps 1/2/4/8
accumulators and reports premature terminations, copy percentage and
dynamic expansion for the basic format (where spills are visible as extra
copy instructions).
"""

from repro.harness.parallel import PointRunner
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET
from repro.harness.runpoints import RunPoint
from repro.ildp_isa.opcodes import IFormat
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

COUNTS = (1, 2, 4, 8)
HEADERS = ("workload",) + tuple(
    f"{label} a{count}"
    for count in COUNTS
    for label in ("spills", "copy%"))


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET, runner=None):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    runner = runner if runner is not None else PointRunner()
    points = [RunPoint.vm(name, VMConfig(fmt=IFormat.BASIC,
                                         n_accumulators=count),
                          scale=scale, budget=budget)
              for name in workloads
              for count in COUNTS]
    summaries = iter(runner.run(points))

    rows = []
    for name in workloads:
        row = [name]
        for _count in COUNTS:
            summary = next(summaries)
            row.append(summary["stats"]["premature_terminations"])
            row.append(summary["stats"]["copy_pct"])
        rows.append(row)
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Ablation — logical accumulator count (basic I-ISA)", HEADERS,
        rows,
        notes=["spills = premature strand terminations at translation "
               "time; the paper found 4 accumulators sufficient"],
        run_report=runner.last_report)


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
