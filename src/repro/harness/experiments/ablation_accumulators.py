"""Ablation: logical accumulator count (paper Section 4.1/4.5).

The paper settled on four logical accumulators, observing that "few
strands must be prematurely terminated".  This ablation sweeps 1/2/4/8
accumulators and reports premature terminations, copy percentage and
dynamic expansion for the basic format (where spills are visible as extra
copy instructions).
"""

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET, run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

COUNTS = (1, 2, 4, 8)
HEADERS = ("workload",) + tuple(
    f"{label} a{count}"
    for count in COUNTS
    for label in ("spills", "copy%"))


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    rows = []
    for name in workloads:
        row = [name]
        for count in COUNTS:
            result = run_vm(name, VMConfig(fmt=IFormat.BASIC,
                                           n_accumulators=count),
                            scale=scale, budget=budget,
                            collect_trace=False)
            row.append(result.stats.premature_terminations)
            row.append(result.stats.copy_percentage())
        rows.append(row)
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Ablation — logical accumulator count (basic I-ISA)", HEADERS,
        rows,
        notes=["spills = premature strand terminations at translation "
               "time; the paper found 4 accumulators sufficient"])


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
