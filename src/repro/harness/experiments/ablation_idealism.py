"""Ablation: loss decomposition via idealisation knobs.

Where do the ILDP machine's cycles go?  This ablation re-times the
modified-I-ISA traces with an oracle branch predictor, a perfect L1 data
cache, and both — the standard simulator-paper decomposition of front-end
vs memory vs true dependence limits.
"""

from repro.harness.parallel import PointRunner
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET
from repro.harness.runpoints import RunPoint, ildp_ipc
from repro.ildp_isa.opcodes import IFormat
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "realistic", "perfect bp", "perfect D$", "both")

_POINTS = ((False, False), (True, False), (False, True), (True, True))


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET, runner=None):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    runner = runner if runner is not None else PointRunner()
    specs = tuple(ildp_ipc(pes=8, comm=0, perfect_bp=perfect_bp,
                           perfect_dcache=perfect_dcache)
                  for perfect_bp, perfect_dcache in _POINTS)
    points = [RunPoint.vm(name, VMConfig(fmt=IFormat.MODIFIED),
                          scale=scale, budget=budget, evals=specs)
              for name in workloads]
    summaries = runner.run(points)

    rows = []
    for name, summary in zip(workloads, summaries):
        row = [name]
        for spec in specs:
            row.append(summary["evals"][spec.key()]["ipc"])
        rows.append(row)
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Ablation — idealisation (modified I-ISA, ILDP 8 PE)", HEADERS,
        rows,
        notes=["oracle branch prediction / always-hit L1-D isolate "
               "front-end and memory losses from true dependence limits"],
        run_report=runner.last_report)


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
