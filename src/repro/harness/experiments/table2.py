"""Table 2: translated instruction statistics.

Per benchmark, for the basic (B) and modified (M) formats:

* relative number of dynamic instructions (paper averages: B 1.60, M 1.36);
* % of copy instructions (B 17.7, M 3.1);
* relative static instruction bytes (B 1.17, M 1.07);
* modelled translation overhead (last column, ~1,125 on average).
"""

from repro.harness.parallel import PointRunner
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET
from repro.harness.runpoints import RunPoint
from repro.ildp_isa.opcodes import IFormat
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "dyn B", "dyn M", "copy% B", "copy% M",
           "bytes B", "bytes M", "insts/translated inst")


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET, runner=None):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    runner = runner if runner is not None else PointRunner()
    points = []
    for name in workloads:
        points.append(RunPoint.vm(name, VMConfig(fmt=IFormat.BASIC),
                                  scale=scale, budget=budget))
        points.append(RunPoint.vm(name, VMConfig(fmt=IFormat.MODIFIED),
                                  scale=scale, budget=budget))
    summaries = iter(runner.run(points))

    rows = []
    for name in workloads:
        basic = next(summaries)
        modified = next(summaries)
        rows.append([
            name,
            basic["stats"]["dynamic_expansion"],
            modified["stats"]["dynamic_expansion"],
            basic["stats"]["copy_pct"],
            modified["stats"]["copy_pct"],
            basic["stats"]["static_expansion"],
            modified["stats"]["static_expansion"],
            modified["cost"]["per_translated_instruction"],
        ])
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Table 2 — translated instruction statistics", HEADERS, rows,
        run_report=runner.last_report)


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
