"""Fig. 6: performance impact of code straightening and the hardware RAS.

Four IPC series on the out-of-order superscalar machine:

* the original binary, with and without a conventional RAS;
* the code-straightened translation, without RAS (``sw_pred.no_ras``
  chaining) and with the dual-address RAS (``sw_pred.ras``).

Expected shape (Section 4.3): straightened-without-RAS loses to
original-without-RAS (chaining overhead eats the straightening benefit);
straightened-with-dual-RAS is about level with original-with-RAS.
"""

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET, run_original, run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.translator.chaining import ChainingPolicy
from repro.uarch.config import MachineConfig
from repro.uarch.superscalar import SuperscalarModel
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "orig.no_ras", "orig.ras", "straight.no_ras",
           "straight.ras")


def _machine(use_ras):
    return MachineConfig("superscalar-ooo",
                         use_conventional_ras=use_ras)


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    rows = []
    for name in workloads:
        trace, _interp = run_original(name, scale=scale, budget=budget)
        orig_noras = SuperscalarModel(_machine(False)).run(trace).ipc
        orig_ras = SuperscalarModel(_machine(True)).run(trace).ipc

        noras = run_vm(name, VMConfig(fmt=IFormat.ALPHA,
                                      policy=ChainingPolicy.SW_PRED_NO_RAS),
                       scale=scale, budget=budget)
        straight_noras = SuperscalarModel(_machine(False)).run(
            noras.trace).ipc
        ras = run_vm(name, VMConfig(fmt=IFormat.ALPHA,
                                    policy=ChainingPolicy.SW_PRED_RAS),
                     scale=scale, budget=budget)
        straight_ras = SuperscalarModel(_machine(True)).run(ras.trace).ipc
        rows.append([name, orig_noras, orig_ras, straight_noras,
                     straight_ras])
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Fig. 6 — IPC: code straightening and hardware RAS", HEADERS, rows,
        notes=["IPC counts V-ISA instructions per cycle"])


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
