"""Fig. 6: performance impact of code straightening and the hardware RAS.

Four IPC series on the out-of-order superscalar machine:

* the original binary, with and without a conventional RAS;
* the code-straightened translation, without RAS (``sw_pred.no_ras``
  chaining) and with the dual-address RAS (``sw_pred.ras``).

Expected shape (Section 4.3): straightened-without-RAS loses to
original-without-RAS (chaining overhead eats the straightening benefit);
straightened-with-dual-RAS is about level with original-with-RAS.
"""

from repro.harness.parallel import PointRunner
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET
from repro.harness.runpoints import RunPoint, superscalar_ipc
from repro.ildp_isa.opcodes import IFormat
from repro.translator.chaining import ChainingPolicy
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "orig.no_ras", "orig.ras", "straight.no_ras",
           "straight.ras")


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET, runner=None):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    runner = runner if runner is not None else PointRunner()
    points = []
    for name in workloads:
        points.append(RunPoint.original(
            name, scale=scale, budget=budget,
            evals=(superscalar_ipc(use_ras=False),
                   superscalar_ipc(use_ras=True))))
        points.append(RunPoint.vm(
            name, VMConfig(fmt=IFormat.ALPHA,
                           policy=ChainingPolicy.SW_PRED_NO_RAS),
            scale=scale, budget=budget,
            evals=(superscalar_ipc(use_ras=False),)))
        points.append(RunPoint.vm(
            name, VMConfig(fmt=IFormat.ALPHA,
                           policy=ChainingPolicy.SW_PRED_RAS),
            scale=scale, budget=budget,
            evals=(superscalar_ipc(use_ras=True),)))
    summaries = iter(runner.run(points))

    rows = []
    for name in workloads:
        original = next(summaries)["evals"]
        straight_noras = next(summaries)["evals"]
        straight_ras = next(summaries)["evals"]
        rows.append([name,
                     original[superscalar_ipc(use_ras=False).key()],
                     original[superscalar_ipc(use_ras=True).key()],
                     straight_noras[superscalar_ipc(use_ras=False).key()],
                     straight_ras[superscalar_ipc(use_ras=True).key()]])
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Fig. 6 — IPC: code straightening and hardware RAS", HEADERS, rows,
        notes=["IPC counts V-ISA instructions per cycle"],
        run_report=runner.last_report)


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
