"""Workload characterization: the instruction-mix table papers print.

For each synthetic SPEC stand-in: dynamic instruction count, memory /
conditional-branch / call-return / indirect-jump shares, and the average
captured superblock size — the properties that drive everything else in
the evaluation.
"""

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET, run_original, run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "dyn insts", "load%", "store%", "cond%",
           "call+ret%", "indirect%", "avg superblock")


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    rows = []
    for name in workloads:
        trace, _interp = run_original(name, scale=scale, budget=budget)
        total = len(trace)
        counts = {"load": 0, "store": 0, "cond": 0, "callret": 0,
                  "indirect": 0}
        for record in trace:
            if record.op_class == "load":
                counts["load"] += 1
            elif record.op_class == "store":
                counts["store"] += 1
            elif record.btype == "cond":
                counts["cond"] += 1
            elif record.btype in ("call", "ret"):
                counts["callret"] += 1
            elif record.btype in ("call_ind", "indirect"):
                counts["indirect"] += 1

        vm_result = run_vm(name, VMConfig(fmt=IFormat.MODIFIED),
                           scale=scale, budget=budget,
                           collect_trace=False)
        fragments = vm_result.tcache.fragments
        avg_block = (sum(f.source_instr_count for f in fragments)
                     / len(fragments)) if fragments else 0.0
        rows.append([
            name, total,
            100.0 * counts["load"] / total,
            100.0 * counts["store"] / total,
            100.0 * counts["cond"] / total,
            100.0 * counts["callret"] / total,
            100.0 * counts["indirect"] / total,
            avg_block,
        ])
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Workload characterization (dynamic instruction mix)", HEADERS,
        rows)


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
