"""Workload characterization: the instruction-mix table papers print.

For each synthetic SPEC stand-in: dynamic instruction count, memory /
conditional-branch / call-return / indirect-jump shares, and the average
captured superblock size — the properties that drive everything else in
the evaluation.
"""

from repro.harness.parallel import PointRunner
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET
from repro.harness.runpoints import RunPoint, instruction_mix
from repro.ildp_isa.opcodes import IFormat
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "dyn insts", "load%", "store%", "cond%",
           "call+ret%", "indirect%", "avg superblock")


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET, runner=None):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    runner = runner if runner is not None else PointRunner()
    points = []
    for name in workloads:
        points.append(RunPoint.original(name, scale=scale, budget=budget,
                                        evals=(instruction_mix(),)))
        points.append(RunPoint.vm(name, VMConfig(fmt=IFormat.MODIFIED),
                                  scale=scale, budget=budget))
    summaries = iter(runner.run(points))

    rows = []
    for name in workloads:
        counts = next(summaries)["evals"]["instruction_mix"]
        vm_summary = next(summaries)
        total = counts["total"]
        rows.append([
            name, total,
            100.0 * counts["load"] / total,
            100.0 * counts["store"] / total,
            100.0 * counts["cond"] / total,
            100.0 * counts["callret"] / total,
            100.0 * counts["indirect"] / total,
            vm_summary["tcache"]["avg_superblock"],
        ])
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Workload characterization (dynamic instruction mix)", HEADERS,
        rows, run_report=runner.last_report)


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
