"""Fig. 9: IPC sensitivity of the ILDP machine (modified I-ISA).

Configurations, matching the paper's bars:

* 8 logical accumulators (8 PEs) — expected ~+11% over the baseline;
* baseline: 4 accumulators, 8 PEs, 32KB L1-D, 0-cycle communication;
* 8KB replicated L1-D — expected to change little;
* 2-cycle global communication latency — expected ~-3.4%;
* 6 PEs — expected ~-5%;  4 PEs — expected ~-18%.
"""

from repro.harness.parallel import PointRunner
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET
from repro.harness.runpoints import RunPoint, ildp_ipc
from repro.ildp_isa.opcodes import IFormat
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "8acc/8pe", "base 4acc/8pe", "8KB D$", "2-cy comm",
           "6pe", "4pe")

#: (label, n_accumulators, pe_count, comm_latency, small dcache)
CONFIGS = (
    ("8acc/8pe", 8, 8, 0, False),
    ("base", 4, 8, 0, False),
    ("8KB", 4, 8, 0, True),
    ("comm2", 4, 8, 2, False),
    ("6pe", 4, 6, 0, False),
    ("4pe", 4, 4, 0, False),
)


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET, runner=None):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    runner = runner if runner is not None else PointRunner()
    # translations depend only on the accumulator count: one VM run per
    # accumulator count, carrying the machine evaluations that need it
    by_accs = {}
    for _label, n_accs, pes, comm, small in CONFIGS:
        by_accs.setdefault(n_accs, []).append(
            ildp_ipc(pes=pes, comm=comm, dcache_small=small))
    points = [RunPoint.vm(name,
                          VMConfig(fmt=IFormat.MODIFIED,
                                   n_accumulators=n_accs),
                          scale=scale, budget=budget, evals=tuple(evals))
              for name in workloads
              for n_accs, evals in sorted(by_accs.items())]
    summaries = iter(runner.run(points))

    rows = []
    for name in workloads:
        evals_by_accs = {n_accs: next(summaries)["evals"]
                         for n_accs in sorted(by_accs)}
        row = [name]
        for _label, n_accs, pes, comm, small in CONFIGS:
            spec = ildp_ipc(pes=pes, comm=comm, dcache_small=small)
            row.append(evals_by_accs[n_accs][spec.key()]["ipc"])
        rows.append(row)
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Fig. 9 — IPC variation over machine parameters (modified I-ISA)",
        HEADERS, rows, run_report=runner.last_report)


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
