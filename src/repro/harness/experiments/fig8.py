"""Fig. 8: IPC comparison across the four configurations.

Bars, per the paper: (1) the original binary and (2) its code-straightened
translation on the out-of-order superscalar; (3) the basic and (4) the
modified accumulator ISA on the ILDP machine with 8 PEs, 32 KB L1-D and
0-cycle global communication ("to isolate the I-ISA effects from machine
resources"); plus (5) the modified ISA's *native* I-ISA IPC.

Expected shape (Section 4.5): modified beats basic; modified lands within
roughly 15% of straightened-Alpha IPC despite ~36% more instructions, with
a clearly higher native IPC.
"""

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET, run_original, run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.uarch.config import SUPERSCALAR, MachineConfig, ildp_config
from repro.uarch.ildp import ILDPModel
from repro.uarch.superscalar import SuperscalarModel
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "original", "straightened", "basic", "modified",
           "native I-IPC")


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    rows = []
    for name in workloads:
        trace, _interp = run_original(name, scale=scale, budget=budget)
        original = SuperscalarModel(MachineConfig("superscalar-ooo")).run(
            trace).ipc

        straight = run_vm(name, VMConfig(fmt=IFormat.ALPHA), scale=scale,
                          budget=budget)
        straightened = SuperscalarModel(
            MachineConfig("superscalar-ooo")).run(straight.trace).ipc

        basic_run = run_vm(name, VMConfig(fmt=IFormat.BASIC), scale=scale,
                           budget=budget)
        basic = ILDPModel(ildp_config(8, 0)).run(basic_run.trace).ipc

        modified_run = run_vm(name, VMConfig(fmt=IFormat.MODIFIED),
                              scale=scale, budget=budget)
        modified_result = ILDPModel(ildp_config(8, 0)).run(
            modified_run.trace)
        rows.append([name, original, straightened, basic,
                     modified_result.ipc, modified_result.native_ipc])
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Fig. 8 — IPC comparison (V-ISA instructions per cycle)", HEADERS,
        rows,
        notes=["ILDP: 8 PEs, 32KB L1-D, 0-cycle communication latency"])


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
