"""Fig. 8: IPC comparison across the four configurations.

Bars, per the paper: (1) the original binary and (2) its code-straightened
translation on the out-of-order superscalar; (3) the basic and (4) the
modified accumulator ISA on the ILDP machine with 8 PEs, 32 KB L1-D and
0-cycle global communication ("to isolate the I-ISA effects from machine
resources"); plus (5) the modified ISA's *native* I-ISA IPC.

Expected shape (Section 4.5): modified beats basic; modified lands within
roughly 15% of straightened-Alpha IPC despite ~36% more instructions, with
a clearly higher native IPC.
"""

from repro.harness.parallel import PointRunner
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET
from repro.harness.runpoints import RunPoint, ildp_ipc, superscalar_ipc
from repro.ildp_isa.opcodes import IFormat
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "original", "straightened", "basic", "modified",
           "native I-IPC")


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET, runner=None):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    runner = runner if runner is not None else PointRunner()
    machine = ildp_ipc(pes=8, comm=0)
    points = []
    for name in workloads:
        points.append(RunPoint.original(name, scale=scale, budget=budget,
                                        evals=(superscalar_ipc(),)))
        points.append(RunPoint.vm(name, VMConfig(fmt=IFormat.ALPHA),
                                  scale=scale, budget=budget,
                                  evals=(superscalar_ipc(),)))
        points.append(RunPoint.vm(name, VMConfig(fmt=IFormat.BASIC),
                                  scale=scale, budget=budget,
                                  evals=(machine,)))
        points.append(RunPoint.vm(name, VMConfig(fmt=IFormat.MODIFIED),
                                  scale=scale, budget=budget,
                                  evals=(machine,)))
    summaries = iter(runner.run(points))

    rows = []
    for name in workloads:
        original = next(summaries)["evals"][superscalar_ipc().key()]
        straightened = next(summaries)["evals"][superscalar_ipc().key()]
        basic = next(summaries)["evals"][machine.key()]["ipc"]
        modified = next(summaries)["evals"][machine.key()]
        rows.append([name, original, straightened, basic,
                     modified["ipc"], modified["native_ipc"]])
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Fig. 8 — IPC comparison (V-ISA instructions per cycle)", HEADERS,
        rows,
        notes=["ILDP: 8 PEs, 32KB L1-D, 0-cycle communication latency"],
        run_report=runner.last_report)


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
