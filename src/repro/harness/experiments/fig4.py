"""Fig. 4: branch/jump mispredictions per 1,000 instructions.

The code-straightening-only simulator (ALPHA target) is run with the three
chaining implementations — ``no_pred``, ``sw_pred.no_ras``, ``sw_pred.ras``
— and compared against the original binary.  Expected shape (Section 4.3):
``no_pred`` is worst by far (every indirect transfer funnels through the
shared dispatch jump), software prediction roughly halves it but stays well
above the original, and the dual-address RAS brings it down to nearly the
original's level.
"""

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET, run_original, run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.translator.chaining import ChainingPolicy
from repro.uarch.config import SUPERSCALAR, MachineConfig
from repro.uarch.predictors import BranchUnit
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

POLICIES = (ChainingPolicy.NO_PRED, ChainingPolicy.SW_PRED_NO_RAS,
            ChainingPolicy.SW_PRED_RAS)

HEADERS = ("workload", "original", "no_pred", "sw_pred.no_ras",
           "sw_pred.ras")


def count_mispredictions(trace, machine_config=None):
    """Feed a trace through the branch-prediction stack alone; returns
    mispredictions per 1,000 V-ISA instructions.

    Normalising by V-ISA instructions (not machine instructions) keeps the
    comparison across chaining schemes apples-to-apples: ``no_pred``'s
    20-instruction dispatch bodies would otherwise dilute its own
    misprediction rate.
    """
    unit = BranchUnit(machine_config if machine_config is not None
                      else MachineConfig("predictor-only"))
    for record in trace:
        unit.note_instruction(record.v_weight)
        if record.btype is not None:
            unit.process(record)
    return unit.stats.per_kilo_instructions()


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    rows = []
    for name in workloads:
        trace, _interp = run_original(name, scale=scale, budget=budget)
        row = [name, count_mispredictions(trace)]
        for policy in POLICIES:
            config = VMConfig(fmt=IFormat.ALPHA, policy=policy)
            result = run_vm(name, config, scale=scale, budget=budget)
            row.append(count_mispredictions(result.trace))
        rows.append(row)
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Fig. 4 — mispredictions per 1,000 instructions", HEADERS, rows,
        notes=["code-straightening-only (ALPHA) target; Table 1 predictors"])


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    n_cols = len(rows[0])
    avg = ["Avg."]
    for col in range(1, n_cols):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
