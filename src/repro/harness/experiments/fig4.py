"""Fig. 4: branch/jump mispredictions per 1,000 instructions.

The code-straightening-only simulator (ALPHA target) is run with the three
chaining implementations — ``no_pred``, ``sw_pred.no_ras``, ``sw_pred.ras``
— and compared against the original binary.  Expected shape (Section 4.3):
``no_pred`` is worst by far (every indirect transfer funnels through the
shared dispatch jump), software prediction roughly halves it but stays well
above the original, and the dual-address RAS brings it down to nearly the
original's level.
"""

from repro.harness.parallel import PointRunner
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET
from repro.harness.runpoints import (  # noqa: F401  (count_mispredictions
    RunPoint,                          #  re-exported for existing callers)
    count_mispredictions,
    mispredictions,
)
from repro.ildp_isa.opcodes import IFormat
from repro.translator.chaining import ChainingPolicy
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

POLICIES = (ChainingPolicy.NO_PRED, ChainingPolicy.SW_PRED_NO_RAS,
            ChainingPolicy.SW_PRED_RAS)

HEADERS = ("workload", "original", "no_pred", "sw_pred.no_ras",
           "sw_pred.ras")


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET, runner=None):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    runner = runner if runner is not None else PointRunner()
    measure = (mispredictions(),)
    points = []
    for name in workloads:
        points.append(RunPoint.original(name, scale=scale, budget=budget,
                                        evals=measure))
        for policy in POLICIES:
            config = VMConfig(fmt=IFormat.ALPHA, policy=policy)
            points.append(RunPoint.vm(name, config, scale=scale,
                                      budget=budget, evals=measure))
    summaries = iter(runner.run(points))

    rows = []
    for name in workloads:
        row = [name]
        for _series in range(1 + len(POLICIES)):
            row.append(next(summaries)["evals"]["mispredictions"])
        rows.append(row)
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Fig. 4 — mispredictions per 1,000 instructions", HEADERS, rows,
        notes=["code-straightening-only (ALPHA) target; Table 1 predictors"],
        run_report=runner.last_report)


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    n_cols = len(rows[0])
    avg = ["Avg."]
    for col in range(1, n_cols):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
