"""Fig. 7: output register value usage ("globalness").

The usage classifier's histogram over superblock values, weighted by how
often each fragment executed.  For the modified format, global outputs =
live-out + communication globals (the paper reports about 25%); the basic
format additionally pays for ``local->global`` and ``no-user->global``
conversions plus spills, pushing global outputs to about 40%.
"""

from repro.harness.parallel import PointRunner
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET
from repro.harness.runpoints import RunPoint
from repro.ildp_isa.opcodes import IFormat
from repro.translator.usage import ValueClass
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

_ORDER = (
    ValueClass.NO_USER,
    ValueClass.LOCAL,
    ValueClass.TEMP,
    ValueClass.COMM_GLOBAL,
    ValueClass.LIVEOUT_GLOBAL,
    ValueClass.LOCAL_TO_GLOBAL,
    ValueClass.NOUSER_TO_GLOBAL,
    ValueClass.SPILL_GLOBAL,
)

HEADERS = ("workload",) + tuple(vclass.value for vclass in _ORDER) + (
    "modified_global%", "basic_global%")

#: Classes whose values must reach a GPR under the modified format.
_MODIFIED_GLOBAL = {ValueClass.COMM_GLOBAL, ValueClass.LIVEOUT_GLOBAL,
                    ValueClass.SPILL_GLOBAL}
#: ... and under the basic format (the ->global conversions join in).
_BASIC_GLOBAL = _MODIFIED_GLOBAL | {ValueClass.LOCAL_TO_GLOBAL,
                                    ValueClass.NOUSER_TO_GLOBAL}


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET, runner=None):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    runner = runner if runner is not None else PointRunner()
    points = [RunPoint.vm(name, VMConfig(fmt=IFormat.MODIFIED),
                          scale=scale, budget=budget)
              for name in workloads]
    summaries = runner.run(points)

    rows = []
    for name, summary in zip(workloads, summaries):
        histogram = summary["usage"]
        total = sum(histogram.values()) or 1
        shares = {vclass: 100.0 * histogram[vclass.value] / total
                  for vclass in ValueClass}
        row = [name] + [shares[vclass] for vclass in _ORDER]
        row.append(sum(shares[c] for c in _MODIFIED_GLOBAL))
        row.append(sum(shares[c] for c in _BASIC_GLOBAL))
        rows.append(row)
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Fig. 7 — output register usage (% of superblock values, "
        "dynamically weighted)", HEADERS, rows,
        run_report=runner.last_report)


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
