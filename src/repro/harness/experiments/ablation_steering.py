"""Ablation: strand steering heuristics under communication latency.

The ISCA 2002 microarchitecture steers a strand's start to the PE that
produced its critical input.  This ablation quantifies how much that
dependence-based steering matters once global communication costs cycles,
against a naive least-loaded policy and a no-renaming modulo policy.
"""

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET, run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.uarch.config import ildp_config
from repro.uarch.ildp import ILDPModel
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "dependence c0", "dependence c2", "least_loaded c2",
           "modulo c2")

_POINTS = (("dependence", 0), ("dependence", 2), ("least_loaded", 2),
           ("modulo", 2))


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    rows = []
    for name in workloads:
        result = run_vm(name, VMConfig(fmt=IFormat.MODIFIED), scale=scale,
                        budget=budget)
        row = [name]
        for steering, comm in _POINTS:
            machine = ildp_config(8, comm)
            machine.steering = steering
            row.append(ILDPModel(machine).run(result.trace).ipc)
        rows.append(row)
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Ablation — strand steering heuristics (modified I-ISA, 8 PEs)",
        HEADERS, rows,
        notes=["c0/c2 = 0/2-cycle global communication latency"])


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
