"""Ablation: strand steering heuristics under communication latency.

The ISCA 2002 microarchitecture steers a strand's start to the PE that
produced its critical input.  This ablation quantifies how much that
dependence-based steering matters once global communication costs cycles,
against a naive least-loaded policy and a no-renaming modulo policy.
"""

from repro.harness.parallel import PointRunner
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET
from repro.harness.runpoints import RunPoint, ildp_ipc
from repro.ildp_isa.opcodes import IFormat
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "dependence c0", "dependence c2", "least_loaded c2",
           "modulo c2")

_POINTS = (("dependence", 0), ("dependence", 2), ("least_loaded", 2),
           ("modulo", 2))


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET, runner=None):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    runner = runner if runner is not None else PointRunner()
    specs = tuple(ildp_ipc(pes=8, comm=comm, steering=steering)
                  for steering, comm in _POINTS)
    points = [RunPoint.vm(name, VMConfig(fmt=IFormat.MODIFIED),
                          scale=scale, budget=budget, evals=specs)
              for name in workloads]
    summaries = runner.run(points)

    rows = []
    for name, summary in zip(workloads, summaries):
        row = [name]
        for spec in specs:
            row.append(summary["evals"][spec.key()]["ipc"])
        rows.append(row)
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Ablation — strand steering heuristics (modified I-ISA, 8 PEs)",
        HEADERS, rows,
        notes=["c0/c2 = 0/2-cycle global communication latency"],
        run_report=runner.last_report)


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
