"""Section 4.2: translation overhead.

The work-unit cost model's per-benchmark cost in modelled Alpha
instructions per translated source instruction, with the phase breakdown
(the paper highlights that ~20% of translator time went to copying
translated instructions field-by-field into the translation cache).
"""

from repro.harness.parallel import PointRunner
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET
from repro.harness.runpoints import RunPoint
from repro.ildp_isa.opcodes import IFormat
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "insts/translated inst", "tcache-copy share",
           "codegen share", "interp insts/src inst", "counters",
           "fragments")


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET, runner=None):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    runner = runner if runner is not None else PointRunner()
    points = [RunPoint.vm(name, VMConfig(fmt=IFormat.MODIFIED),
                          scale=scale, budget=budget)
              for name in workloads]
    summaries = runner.run(points)

    rows = []
    for name, summary in zip(workloads, summaries):
        cost = summary["cost"]
        rows.append([
            name,
            cost["per_translated_instruction"],
            cost["phase_fractions"]["tcache_copy"],
            cost["phase_fractions"]["codegen"],
            summary["stats"]["interpretation_overhead"],
            summary["profiler_candidates"],
            cost["fragments"],
        ])
    rows.append(["Avg.",
                 sum(r[1] for r in rows) / len(rows),
                 sum(r[2] for r in rows) / len(rows),
                 sum(r[3] for r in rows) / len(rows),
                 sum(r[4] for r in rows) / len(rows),
                 sum(r[5] for r in rows),
                 sum(r[6] for r in rows)])
    return ExperimentResult(
        "Section 4.2 — translation overhead (modelled)", HEADERS, rows,
        notes=["paper: ~1,125 Alpha instructions per translated "
               "instruction, ~20% in tcache copying",
               "paper Section 4.1: interpretation ~1,000 instructions "
               "per source instruction; counter population is small"],
        run_report=runner.last_report)
