"""One experiment driver per table/figure of the paper's evaluation."""

from repro.harness.experiments import (  # noqa: F401
    ablation_accumulators,
    ablation_fusion,
    ablation_idealism,
    ablation_steering,
    characterization,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    table2,
    overhead,
)

__all__ = ["fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table2",
           "overhead", "ablation_fusion", "ablation_steering",
           "ablation_accumulators", "ablation_idealism", "characterization"]
