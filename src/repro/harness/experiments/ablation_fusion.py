"""Ablation: memory-instruction fusion (paper Section 4.5).

The paper notes that *not* splitting memory instructions into an
address-calculation plus access pair would reduce the instruction count
expansion at the cost of decode complexity.  This ablation runs the
modified I-ISA with both decompositions and compares dynamic expansion and
ILDP IPC.
"""

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET, run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.uarch.config import ildp_config
from repro.uarch.ildp import ILDPModel
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "expansion split", "expansion fused", "ipc split",
           "ipc fused")


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    rows = []
    for name in workloads:
        row = [name]
        ipcs = []
        for fused in (False, True):
            result = run_vm(name, VMConfig(fmt=IFormat.MODIFIED,
                                           fuse_memory=fused),
                            scale=scale, budget=budget)
            row.append(result.stats.dynamic_expansion())
            ipcs.append(ILDPModel(ildp_config(8, 0)).run(result.trace).ipc)
        row.extend(ipcs)
        rows.append(row)
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Ablation — memory instruction splitting vs fusion "
        "(modified I-ISA)", HEADERS, rows,
        notes=["fusion trades decode complexity for fetch/ROB pressure "
               "(Section 4.5)"])


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
