"""Ablation: memory-instruction fusion (paper Section 4.5).

The paper notes that *not* splitting memory instructions into an
address-calculation plus access pair would reduce the instruction count
expansion at the cost of decode complexity.  This ablation runs the
modified I-ISA with both decompositions and compares dynamic expansion and
ILDP IPC.
"""

from repro.harness.parallel import PointRunner
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET
from repro.harness.runpoints import RunPoint, ildp_ipc
from repro.ildp_isa.opcodes import IFormat
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "expansion split", "expansion fused", "ipc split",
           "ipc fused")


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET, runner=None):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    runner = runner if runner is not None else PointRunner()
    machine = ildp_ipc(pes=8, comm=0)
    points = [RunPoint.vm(name, VMConfig(fmt=IFormat.MODIFIED,
                                         fuse_memory=fused),
                          scale=scale, budget=budget, evals=(machine,))
              for name in workloads
              for fused in (False, True)]
    summaries = iter(runner.run(points))

    rows = []
    for name in workloads:
        split = next(summaries)
        fused = next(summaries)
        rows.append([name,
                     split["stats"]["dynamic_expansion"],
                     fused["stats"]["dynamic_expansion"],
                     split["evals"][machine.key()]["ipc"],
                     fused["evals"][machine.key()]["ipc"]])
    rows.append(_average_row(rows))
    return ExperimentResult(
        "Ablation — memory instruction splitting vs fusion "
        "(modified I-ISA)", HEADERS, rows,
        notes=["fusion trades decode complexity for fetch/ROB pressure "
               "(Section 4.5)"],
        run_report=runner.last_report)


def _average_row(rows):
    """Append-ready arithmetic mean over the numeric columns."""
    avg = ["Avg."]
    for col in range(1, len(rows[0])):
        avg.append(sum(row[col] for row in rows) / len(rows))
    return avg
