"""Fig. 5: relative dynamic instruction count of straightened code.

For the code-straightening-only target, the executed instruction count
(including compare-and-branch glue and dispatch code) is divided by the
V-ISA instructions those executions represent.  Benchmarks dominated by
register-indirect transfers (gap, perlbmk, eon) expand most; benchmarks
whose calls are direct BSRs barely expand (Section 4.3).
"""

from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET, run_vm
from repro.ildp_isa.opcodes import IFormat
from repro.translator.chaining import ChainingPolicy
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "relative instruction count")


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET,
        policy=ChainingPolicy.SW_PRED_RAS):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    rows = []
    for name in workloads:
        config = VMConfig(fmt=IFormat.ALPHA, policy=policy)
        result = run_vm(name, config, scale=scale, budget=budget,
                        collect_trace=False)
        rows.append([name, result.stats.dynamic_expansion()])
    average = sum(row[1] for row in rows) / len(rows)
    rows.append(["Avg.", average])
    return ExperimentResult(
        "Fig. 5 — relative instruction count (straightened / original)",
        HEADERS, rows,
        notes=[f"chaining policy: {policy.value}"])
