"""Fig. 5: relative dynamic instruction count of straightened code.

For the code-straightening-only target, the executed instruction count
(including compare-and-branch glue and dispatch code) is divided by the
V-ISA instructions those executions represent.  Benchmarks dominated by
register-indirect transfers (gap, perlbmk, eon) expand most; benchmarks
whose calls are direct BSRs barely expand (Section 4.3).
"""

from repro.harness.parallel import PointRunner
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import DEFAULT_BUDGET
from repro.harness.runpoints import RunPoint
from repro.ildp_isa.opcodes import IFormat
from repro.translator.chaining import ChainingPolicy
from repro.vm.config import VMConfig
from repro.workloads import WORKLOAD_NAMES

HEADERS = ("workload", "relative instruction count")


def run(workloads=None, scale=None, budget=DEFAULT_BUDGET,
        policy=ChainingPolicy.SW_PRED_RAS, runner=None):
    """Run the experiment; returns an ExperimentResult (see module doc)."""
    workloads = workloads if workloads is not None else WORKLOAD_NAMES
    runner = runner if runner is not None else PointRunner()
    points = [RunPoint.vm(name, VMConfig(fmt=IFormat.ALPHA, policy=policy),
                          scale=scale, budget=budget)
              for name in workloads]
    summaries = runner.run(points)

    rows = [[name, summary["stats"]["dynamic_expansion"]]
            for name, summary in zip(workloads, summaries)]
    average = sum(row[1] for row in rows) / len(rows)
    rows.append(["Avg.", average])
    return ExperimentResult(
        "Fig. 5 — relative instruction count (straightened / original)",
        HEADERS, rows,
        notes=[f"chaining policy: {policy.value}"],
        run_report=runner.last_report)
