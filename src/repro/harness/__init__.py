"""Experiment harness: one driver per table/figure of the paper.

Each experiment module exposes ``run(workloads=None, scale=None,
budget=..., runner=None)`` returning an ``ExperimentResult`` whose
``rows()`` give the numbers and whose ``render()`` prints the same
table/series the paper reports.  Experiments declare their work as
:class:`~repro.harness.runpoints.RunPoint` batches; pass a configured
:class:`~repro.harness.parallel.PointRunner` as ``runner`` to execute
them in parallel and/or against the persistent result cache.
"""

from repro.harness.runner import run_vm, run_original, RunResult
from repro.harness.reporting import format_table, ExperimentResult
from repro.harness.runpoints import RunPoint, execute_point
from repro.harness.parallel import PointRunner, RunReport
from repro.harness.resultcache import ResultCache

__all__ = [
    "run_vm",
    "run_original",
    "RunResult",
    "format_table",
    "ExperimentResult",
    "RunPoint",
    "execute_point",
    "PointRunner",
    "RunReport",
    "ResultCache",
]
