"""Experiment harness: one driver per table/figure of the paper.

Each experiment module exposes ``run(workloads=None, scale=1, budget=...)``
returning an ``ExperimentResult`` whose ``rows()`` give the numbers and
whose ``render()`` prints the same table/series the paper reports.
"""

from repro.harness.runner import run_vm, run_original, RunResult
from repro.harness.reporting import format_table, ExperimentResult

__all__ = [
    "run_vm",
    "run_original",
    "RunResult",
    "format_table",
    "ExperimentResult",
]
