"""Persistent on-disk cache of completed run-point summaries.

The whole simulator is deterministic, so a run point's summary is a pure
function of its identity: workload name + scale + budget + the full
:class:`~repro.vm.config.VMConfig` key fields + the requested evaluations
+ the schema version.  The cache keys entries by the SHA-256 of that
identity's canonical JSON; any change to any ingredient — a different
budget, one flipped config knob, a new evaluator parameter, a schema bump
— therefore produces a different key and an automatic miss.  There is no
time-based invalidation and no partial matching.

Entries are single JSON files written atomically (temp file +
``os.replace``), so concurrent workers and concurrent harness invocations
can share one cache directory without locking: the worst case is two
processes computing the same (identical) entry and one overwriting the
other with the same bytes.

The default location is ``~/.cache/repro/runpoints``, overridable with the
``REPRO_CACHE_DIR`` environment variable or the CLI's ``--cache-dir``.
"""

import hashlib
import json
import os
import tempfile

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
_DEFAULT_SUBDIR = os.path.join(".cache", "repro", "runpoints")


def default_cache_dir():
    """The cache root honouring ``REPRO_CACHE_DIR``."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), _DEFAULT_SUBDIR)


def point_key(point):
    """Content hash identifying a run point (hex SHA-256)."""
    canonical = json.dumps(point.key_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of ``<key>.json`` run-point summaries."""

    def __init__(self, root=None):
        self.root = root if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        #: entries that existed but were unusable (truncated JSON,
        #: identity mismatch) — distinct from plain misses so operators
        #: can spot a cache being damaged rather than merely cold
        self.corrupt = 0
        self.stores = 0
        self.store_failures = 0

    def _path(self, key):
        # two-level fan-out keeps directories small on big sweeps
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, point):
        """The stored summary for ``point``, or None on miss/corruption.

        A missing (or unreadable) file is a plain miss; a file that
        exists but fails to parse, or whose stored identity does not
        match the requested point, counts as ``corrupt`` instead — both
        re-execute the point, but the report tells them apart.
        """
        path = self._path(point_key(point))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            self.corrupt += 1
            return None
        # guard against hash collisions and hand-edited files: the stored
        # identity must match the requested one exactly
        if not isinstance(entry, dict) or "summary" not in entry or \
                entry.get("point") != point.key_dict():
            self.corrupt += 1
            return None
        self.hits += 1
        return entry["summary"]

    def put(self, point, summary):
        """Persist a summary atomically; returns the entry path.

        An unwritable root (bad ``--cache-dir``, full disk) must not kill
        a long sweep after its results were computed, so write failures
        are swallowed and counted — the run simply isn't memoized.
        """
        path = self._path(point_key(point))
        directory = os.path.dirname(path)
        payload = json.dumps({"point": point.key_dict(),
                              "summary": summary}, sort_keys=True)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        except OSError:
            self.store_failures += 1
            return None
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except OSError:
            self.store_failures += 1
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return None
        self.stores += 1
        return path

    def clear(self):
        """Delete every cache entry under the root; returns the count.

        Concurrent harness invocations may clear the same directory;
        losing an unlink race to another process just means the entry is
        already gone, so ``FileNotFoundError`` is not an error.
        """
        removed = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".json"):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                    except FileNotFoundError:
                        continue
                    removed += 1
        return removed

    def __repr__(self):
        return (f"ResultCache({self.root!r}, hits={self.hits}, "
                f"misses={self.misses}, corrupt={self.corrupt})")
