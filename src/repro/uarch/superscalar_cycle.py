"""Cycle-stepped simulation of the reference out-of-order superscalar.

The companion to :mod:`repro.uarch.ildp_cycle`: instead of the one-pass
ready-time computation of :class:`~repro.uarch.superscalar.SuperscalarModel`,
this model advances a clock with explicit structures — a fetch stage, a
dispatch stage binding operands to in-flight producers in program order
(register renaming semantics), a unified issue window scanned oldest-first
each cycle (Table 1: "oldest-first issue") bounded by the symmetric
functional units, and an in-order reorder buffer.

Used to validate the fast model; the experiment harness keeps using the
fast one.
"""

from collections import deque

from repro.uarch.cache import MemoryHierarchy
from repro.uarch.predictors import BranchUnit
from repro.uarch.superscalar import TimingResult


class _Entry:
    """One in-flight instruction."""

    __slots__ = ("record", "seq", "deps", "complete_cycle", "issued")

    def __init__(self, record, seq):
        self.record = record
        self.seq = seq
        self.deps = []
        self.complete_cycle = None
        self.issued = False


class CycleSuperscalarModel:
    """Cycle-stepped reference model of the out-of-order machine."""

    def __init__(self, config):
        self.config = config
        self.hierarchy = MemoryHierarchy(config)
        self.branch_unit = BranchUnit(config)

    def run(self, trace):
        config = self.config
        width = config.width

        trace = list(trace)
        instructions = len(trace)
        v_instructions = sum(record.v_weight for record in trace)

        fetch_index = 0
        fetch_stall_until = 0
        last_fetch_line = None
        dispatch_queue = deque()
        rob = deque()                      # in-flight, program order
        reg_writer = {}
        mem_writer = {}                    # 8-byte block -> producing entry
        cycle = 0
        seq = 0
        blocking_branch = None

        max_cycles = 300 * max(instructions, 1) + 10_000

        while (fetch_index < len(trace) or dispatch_queue or rob) and \
                cycle < max_cycles:
            # ---- resolve a blocking mispredicted branch ----
            if blocking_branch is not None and \
                    blocking_branch.complete_cycle is not None and \
                    blocking_branch.complete_cycle <= cycle:
                fetch_stall_until = max(
                    fetch_stall_until,
                    blocking_branch.complete_cycle
                    + config.redirect_latency)
                blocking_branch = None

            # ---- commit ----
            committed = 0
            while rob and committed < width:
                head = rob[0]
                if head.complete_cycle is None or \
                        head.complete_cycle > cycle:
                    break
                rob.popleft()
                committed += 1

            # ---- issue: oldest-first over the window, FU-bounded ----
            issued = 0
            for entry in rob:
                if issued >= config.n_functional_units:
                    break
                if entry.issued:
                    continue
                if self._ready(entry, cycle):
                    entry.issued = True
                    entry.complete_cycle = cycle + \
                        self._latency(entry.record)
                    issued += 1

            # ---- dispatch into the window / ROB ----
            dispatched = 0
            while dispatch_queue and dispatched < width and \
                    len(rob) < config.rob_size:
                entry = dispatch_queue.popleft()
                self._bind(entry, reg_writer, mem_writer)
                rob.append(entry)
                dispatched += 1

            # ---- fetch ----
            if blocking_branch is None and cycle >= fetch_stall_until:
                fetched = 0
                while fetch_index < len(trace) and fetched < width:
                    record = trace[fetch_index]
                    line = record.address // config.icache.line
                    if line != last_fetch_line:
                        last_fetch_line = line
                        extra = self.hierarchy.ifetch(record.address)
                        if extra:
                            fetch_stall_until = cycle + extra
                            break
                    entry = _Entry(record, seq)
                    seq += 1
                    fetch_index += 1
                    fetched += 1
                    dispatch_queue.append(entry)
                    self.branch_unit.note_instruction(record.v_weight)
                    if record.btype is not None:
                        mispredicted = self.branch_unit.process(record)
                        if mispredicted and not \
                                config.perfect_prediction:
                            blocking_branch = entry
                            break
                        if record.taken:
                            break

            cycle += 1

        return TimingResult(cycle, instructions, v_instructions,
                            self.branch_unit.stats,
                            f"{config.name}-cycle")

    # -- helpers -----------------------------------------------------------------

    def _bind(self, entry, reg_writer, mem_writer):
        """Program-order operand binding (renaming semantics)."""
        record = entry.record
        for src in record.srcs:
            producer = reg_writer.get(src)
            if producer is not None:
                entry.deps.append(producer)
        if record.mem_addr is not None:
            block = record.mem_addr >> 3
            if record.op_class == "load":
                producer = mem_writer.get(block)
                if producer is not None:
                    entry.deps.append(producer)
            elif record.op_class == "store":
                mem_writer[block] = entry
        if record.dst is not None:
            reg_writer[record.dst] = entry

    def _ready(self, entry, cycle):
        for producer in entry.deps:
            when = producer.complete_cycle
            if when is None or when > cycle:
                return False
        return True

    def _latency(self, record):
        op_class = record.op_class
        if op_class == "load":
            if self.config.perfect_dcache:
                return self.config.dcache.latency
            return self.hierarchy.daccess(
                record.mem_addr if record.mem_addr is not None
                else record.address)
        if op_class == "mul":
            return self.config.mul_latency
        if op_class == "store" and record.mem_addr is not None:
            if not self.config.perfect_dcache:
                self.hierarchy.daccess(record.mem_addr)
            return self.config.int_latency
        return max(self.config.int_latency, 1)
