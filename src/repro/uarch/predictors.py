"""Branch prediction models (Table 1).

* 16K-entry g-share with 12-bit global history, 2-bit counters;
* 512-entry 4-way set-associative BTB for taken/indirect targets;
* 8-entry conventional return address stack — usable only by code whose
  return instructions are architecturally visible (the original Alpha
  binary), which is exactly the paper's point about trace-based DBT;
* the dual-address RAS of Section 3.2, whose per-return outcome the
  functional executor already recorded in the trace (``ras_hit``).

``BranchUnit.process(record)`` returns the misprediction class for one
control-transfer record, and is shared by the Fig. 4 counting experiment
and both timing models.
"""


class GShare:
    """G-share direction predictor with 2-bit saturating counters."""

    def __init__(self, entries=16384, history_bits=12):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._table = [2] * entries  # weakly taken
        self._history = 0

    def _index(self, pc):
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc):
        return self._table[self._index(pc)] >= 2

    def update(self, pc, taken):
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            self._table[index] = min(counter + 1, 3)
        else:
            self._table[index] = max(counter - 1, 0)
        self._history = ((self._history << 1) | (1 if taken else 0)) \
            & self._history_mask


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement."""

    def __init__(self, entries=512, assoc=4):
        self._sets = entries // assoc
        self.assoc = assoc
        self._ways = [dict() for _ in range(self._sets)]

    def _set_for(self, pc):
        return self._ways[(pc >> 2) % self._sets]

    def lookup(self, pc):
        ways = self._set_for(pc)
        target = ways.get(pc)
        if target is not None:
            # refresh LRU position
            del ways[pc]
            ways[pc] = target
        return target

    def update(self, pc, target):
        ways = self._set_for(pc)
        if pc in ways:
            del ways[pc]
        elif len(ways) >= self.assoc:
            oldest = next(iter(ways))
            del ways[oldest]
        ways[pc] = target


class ReturnAddressStack:
    """Conventional 8-entry hardware RAS."""

    def __init__(self, depth=8):
        self.depth = depth
        self._stack = []

    def push(self, address):
        self._stack.append(address)
        if len(self._stack) > self.depth:
            self._stack.pop(0)

    def pop(self):
        if self._stack:
            return self._stack.pop()
        return None


class BranchStats:
    """Misprediction accounting for Fig. 4."""

    def __init__(self):
        self.instructions = 0
        self.cond_mispredictions = 0
        self.target_mispredictions = 0
        self.ras_mispredictions = 0
        self.btb_misfetches = 0

    @property
    def mispredictions(self):
        return (self.cond_mispredictions + self.target_mispredictions
                + self.ras_mispredictions)

    def per_kilo_instructions(self):
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.instructions


class BranchUnit:
    """The front-end prediction stack, driven by trace records."""

    def __init__(self, config):
        self.gshare = GShare(config.gshare_entries, config.gshare_history)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_assoc)
        self.ras = ReturnAddressStack(config.ras_depth)
        self.use_ras = config.use_conventional_ras
        self.stats = BranchStats()

    def note_instruction(self, count=1):
        """Count executed instructions for the per-1,000 normalisation."""
        self.stats.instructions += count

    def process(self, record):
        """Predict one control transfer; returns True on misprediction.

        BTB misses on taken direct branches are misfetches (short
        redirect), not mispredictions; they are counted separately.
        """
        btype = record.btype
        if btype is None:
            return False
        pc = record.address
        stats = self.stats

        if btype == "cond":
            predicted = self.gshare.predict(pc)
            self.gshare.update(pc, record.taken)
            if record.taken:
                if self.btb.lookup(pc) is None:
                    stats.btb_misfetches += 1
                self.btb.update(pc, record.target)
            if predicted != record.taken:
                stats.cond_mispredictions += 1
                return True
            return False

        if btype == "uncond":
            if self.btb.lookup(pc) is None:
                stats.btb_misfetches += 1
            self.btb.update(pc, record.target)
            return False

        if btype == "call":
            # direct call: push the conventional RAS, target is static
            self.ras.push(pc + 4)
            if self.btb.lookup(pc) is None:
                stats.btb_misfetches += 1
            self.btb.update(pc, record.target)
            return False

        if btype == "call_ind":
            self.ras.push(pc + 4)
            predicted = self.btb.lookup(pc)
            self.btb.update(pc, record.target)
            if predicted != record.target:
                stats.target_mispredictions += 1
                return True
            return False

        if btype == "ret":
            if record.ras_hit is not None:
                # dual-address RAS outcome decided by the executor
                if not record.ras_hit:
                    stats.ras_mispredictions += 1
                    return True
                return False
            if not self.use_ras:
                # no RAS: returns fall back to the BTB like any indirect
                predicted = self.btb.lookup(pc)
                self.btb.update(pc, record.target)
                if predicted != record.target:
                    stats.ras_mispredictions += 1
                    return True
                return False
            predicted = self.ras.pop()
            if predicted != record.target:
                stats.ras_mispredictions += 1
                return True
            return False

        if btype == "indirect":
            predicted = self.btb.lookup(pc)
            self.btb.update(pc, record.target)
            if predicted != record.target:
                stats.target_mispredictions += 1
                return True
            return False

        raise ValueError(f"unknown branch type {btype!r}")
