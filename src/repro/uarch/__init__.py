"""Trace-driven timing models (paper Table 1 and Section 4.5).

Two machines are modelled:

* an idealised 4-wide out-of-order superscalar (the "original" /
  "code-straightening-only" reference, SimpleScalar-like);
* the ILDP distributed microarchitecture: a pipelined front end steering
  instructions by accumulator number into parallel in-order PE FIFOs, with
  explicit inter-PE communication latency and replicated L1 data caches.

Both share the front-end models: gshare + BTB + (dual-address) RAS branch
prediction and the cache hierarchy.
"""

from repro.uarch.config import MachineConfig, SUPERSCALAR, ildp_config
from repro.uarch.predictors import BranchUnit, GShare, BranchTargetBuffer
from repro.uarch.cache import Cache, MemoryHierarchy
from repro.uarch.superscalar import SuperscalarModel
from repro.uarch.superscalar_cycle import CycleSuperscalarModel
from repro.uarch.ildp import ILDPModel
from repro.uarch.ildp_cycle import CycleILDPModel
from repro.uarch.trace_utils import interpreter_trace

__all__ = [
    "MachineConfig",
    "SUPERSCALAR",
    "ildp_config",
    "BranchUnit",
    "GShare",
    "BranchTargetBuffer",
    "Cache",
    "MemoryHierarchy",
    "SuperscalarModel",
    "CycleSuperscalarModel",
    "ILDPModel",
    "CycleILDPModel",
    "interpreter_trace",
]
