"""Cache hierarchy models (Table 1).

Caches are set-associative with LRU or (deterministic) random replacement.
``access`` returns the total latency for the access, charging each level it
had to descend to, down to the 72-cycle memory.
"""

from repro.utils.rng import Xorshift64


class Cache:
    """One cache level."""

    def __init__(self, config, next_level=None, memory_latency=72,
                 seed=0xC0FFEE):
        self.name = config.name
        self.line = config.line
        self.latency = config.latency
        self.assoc = config.assoc
        self.n_sets = max(config.size // (config.line * config.assoc), 1)
        self.policy = config.policy
        self.next_level = next_level
        self.memory_latency = memory_latency
        self._sets = [dict() for _ in range(self.n_sets)]
        self._rng = Xorshift64(seed)
        self.hits = 0
        self.misses = 0

    def _locate(self, address):
        line_address = address // self.line
        return self._sets[line_address % self.n_sets], line_address

    def access(self, address):
        """Access one address; returns the latency in cycles."""
        ways, tag = self._locate(address)
        if tag in ways:
            self.hits += 1
            if self.policy == "lru":
                del ways[tag]
                ways[tag] = True
            return self.latency
        self.misses += 1
        if self.next_level is not None:
            below = self.next_level.access(address)
        else:
            below = self.memory_latency
        self._fill(ways, tag)
        return self.latency + below

    def _fill(self, ways, tag):
        if len(ways) >= self.assoc:
            if self.policy == "lru":
                victim = next(iter(ways))
            else:
                victim = list(ways)[self._rng.next_range(len(ways))]
            del ways[victim]
        ways[tag] = True

    def miss_rate(self):
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class MemoryHierarchy:
    """I-cache + D-cache over a shared L2 over memory."""

    def __init__(self, machine_config):
        self.l2 = Cache(machine_config.l2,
                        memory_latency=machine_config.memory_latency)
        self.icache = Cache(machine_config.icache, next_level=self.l2)
        self.dcache = Cache(machine_config.dcache, next_level=self.l2)

    def ifetch(self, address):
        """Instruction fetch; returns extra cycles beyond a 1-cycle hit."""
        return self.icache.access(address) - self.icache.latency

    def daccess(self, address):
        """Data access; returns the full load-to-use latency."""
        return self.dcache.access(address)
