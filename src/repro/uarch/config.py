"""Machine configurations from Table 1 of the paper."""


class CacheConfig:
    """Geometry and timing of one cache level."""

    __slots__ = ("name", "size", "line", "assoc", "latency", "policy")

    def __init__(self, name, size, line, assoc, latency, policy):
        self.name = name
        self.size = size
        self.line = line
        self.assoc = assoc
        self.latency = latency
        self.policy = policy


class MachineConfig:
    """Everything a timing model needs."""

    def __init__(self, name, width=4, rob_size=128, n_functional_units=4,
                 pe_count=None, fifo_depth=8, comm_latency=0,
                 icache=None, dcache=None, l2=None,
                 memory_latency=72, redirect_latency=3,
                 gshare_entries=16384, gshare_history=12,
                 btb_entries=512, btb_assoc=4, ras_depth=8,
                 use_conventional_ras=True,
                 int_latency=1, mul_latency=7, pipeline_depth=5,
                 steering="dependence", perfect_prediction=False,
                 perfect_dcache=False):
        self.name = name
        self.width = width
        self.rob_size = rob_size
        self.n_functional_units = n_functional_units
        #: ILDP only: number of processing elements (None = superscalar)
        self.pe_count = pe_count
        self.fifo_depth = fifo_depth
        self.comm_latency = comm_latency
        self.icache = icache if icache is not None else CacheConfig(
            "icache", 32 * 1024, 128, 1, 1, "lru")
        self.dcache = dcache if dcache is not None else CacheConfig(
            "dcache", 32 * 1024, 64, 4, 2, "random")
        self.l2 = l2 if l2 is not None else CacheConfig(
            "l2", 1024 * 1024, 128, 4, 8, "random")
        self.memory_latency = memory_latency
        self.redirect_latency = redirect_latency
        self.gshare_entries = gshare_entries
        self.gshare_history = gshare_history
        self.btb_entries = btb_entries
        self.btb_assoc = btb_assoc
        self.ras_depth = ras_depth
        #: Fig. 6 compares machines with and without a return address stack.
        self.use_conventional_ras = use_conventional_ras
        self.int_latency = int_latency
        self.mul_latency = mul_latency
        self.pipeline_depth = pipeline_depth
        #: Strand-start steering heuristic for the ILDP machine:
        #: "dependence" (producer PE first, the ISCA 2002 policy),
        #: "least_loaded" (shortest FIFO) or "modulo" (acc % PEs, no
        #: renaming) — the ablation studied in bench_ablation_steering.
        if steering not in ("dependence", "least_loaded", "modulo"):
            raise ValueError(f"unknown steering policy {steering!r}")
        self.steering = steering
        #: Idealisation knobs for loss decomposition: oracle branch
        #: prediction (no misprediction/misfetch penalties) and an
        #: always-hitting L1 data cache.
        self.perfect_prediction = perfect_prediction
        self.perfect_dcache = perfect_dcache

    def __repr__(self):
        if self.pe_count is None:
            return f"MachineConfig({self.name}, {self.width}-wide OoO)"
        return (f"MachineConfig({self.name}, {self.pe_count} PEs, "
                f"comm={self.comm_latency})")


#: Table 1, left column: the out-of-order superscalar reference — 4-wide,
#: 128-entry reorder buffer / issue window, 4 symmetric functional units,
#: no communication latency, oldest-first issue.
SUPERSCALAR = MachineConfig("superscalar-ooo")


def small_dcache():
    """Table 1's ILDP alternative D-cache: 8 KB, 2-way, 64-byte lines,
    2-cycle latency, replicated across PEs."""
    return CacheConfig("dcache", 8 * 1024, 64, 2, 2, "random")


def ildp_config(pe_count=8, comm_latency=0, dcache_small=False):
    """Table 1, right column: the ILDP machine with 4/6/8 PEs (FIFO heads),
    0 or 2 cycle global communication latency, and optionally the quarter
    size replicated L1 data cache."""
    return MachineConfig(
        f"ildp-{pe_count}pe-c{comm_latency}",
        width=4,
        rob_size=128,
        n_functional_units=pe_count,
        pe_count=pe_count,
        comm_latency=comm_latency,
        dcache=small_dcache() if dcache_small else None,
    )
