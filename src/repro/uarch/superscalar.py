"""Trace-driven timing model of the reference out-of-order superscalar.

Table 1, left column: 4-wide fetch/decode/retire, a 128-entry reorder
buffer doubling as the issue window, four fully symmetric functional
units, oldest-first issue, no communication latency.  The paper calls this
model "rather idealistic" (Section 4.5) — it is intentionally generous,
exactly like the SimpleScalar configuration it stands in for.
"""

import heapq

from repro.uarch.cache import MemoryHierarchy
from repro.uarch.frontend import FrontEnd
from repro.uarch.predictors import BranchUnit
from repro.uarch.retire import RetireUnit


class TimingResult:
    """Cycles plus the derived IPC numbers for one trace run."""

    def __init__(self, cycles, instructions, v_instructions, branch_stats,
                 machine_name):
        self.cycles = max(cycles, 1)
        self.instructions = instructions
        self.v_instructions = v_instructions
        self.branch_stats = branch_stats
        self.machine_name = machine_name

    @property
    def ipc(self):
        """V-ISA instructions per cycle (the paper's headline metric)."""
        return self.v_instructions / self.cycles

    @property
    def native_ipc(self):
        """Machine instructions per cycle (Fig. 8's last bar)."""
        return self.instructions / self.cycles

    def __repr__(self):
        return (f"TimingResult({self.machine_name}, {self.cycles} cycles, "
                f"IPC={self.ipc:.3f})")


class SuperscalarModel:
    """One-pass trace-driven OoO timing model."""

    def __init__(self, config):
        self.config = config
        self.hierarchy = MemoryHierarchy(config)
        self.branch_unit = BranchUnit(config)
        self.frontend = FrontEnd(config, self.hierarchy, self.branch_unit)
        self.retire_unit = RetireUnit(config.rob_size, config.width)
        self._reg_ready = {}
        self._fu_free = [0] * config.n_functional_units
        heapq.heapify(self._fu_free)
        #: 8-byte block -> completion cycle of the last store to it
        #: (store-to-load dependences forward at the store's completion)
        self._mem_ready = {}
        self._instructions = 0
        self._v_instructions = 0

    def run(self, trace):
        """Consume a trace; returns the :class:`TimingResult`."""
        for record in trace:
            self.step(record)
        return self.result()

    def step(self, record):
        config = self.config
        frontend = self.frontend
        self._instructions += 1
        self._v_instructions += record.v_weight
        self.branch_unit.note_instruction(record.v_weight)

        fetch = frontend.fetch(record)
        dispatch = fetch + config.pipeline_depth
        dispatch = self.retire_unit.admit(dispatch)

        ready = dispatch
        for src in record.srcs:
            when = self._reg_ready.get(src)
            if when is not None and when > ready:
                ready = when
        block = None
        if record.mem_addr is not None:
            block = record.mem_addr >> 3
            if record.op_class == "load":
                when = self._mem_ready.get(block)
                if when is not None and when > ready:
                    ready = when  # wait for the conflicting store

        fu_free = heapq.heappop(self._fu_free)
        start = max(ready, fu_free)
        heapq.heappush(self._fu_free, start + 1)  # fully pipelined

        latency = self._latency(record)
        complete = start + latency
        if record.dst is not None:
            self._reg_ready[record.dst] = complete
        if block is not None and record.op_class == "store":
            self._mem_ready[block] = complete
        self.retire_unit.retire(complete)

        if record.is_control():
            frontend.resolve_control(record, complete)

    def _latency(self, record):
        op_class = record.op_class
        if op_class == "load":
            if self.config.perfect_dcache:
                return self.config.dcache.latency
            return self.hierarchy.daccess(record.mem_addr
                                          if record.mem_addr is not None
                                          else record.address)
        if op_class == "mul":
            return self.config.mul_latency
        if op_class == "store" and record.mem_addr is not None:
            if not self.config.perfect_dcache:
                self.hierarchy.daccess(record.mem_addr)
            return self.config.int_latency
        return self.config.int_latency

    def result(self):
        return TimingResult(self.retire_unit.last_retire,
                            self._instructions, self._v_instructions,
                            self.branch_unit.stats, self.config.name)
