"""The shared fetch/decode front end of both timing models.

Models 4-wide fetch with I-cache line behaviour, fetch-group breaks on
taken control transfers, and 3-cycle redirects for both misfetches (taken
branch missing in the BTB) and mispredictions (Table 1).
"""


class FrontEnd:
    """Tracks the cycle at which each instruction leaves fetch."""

    def __init__(self, config, hierarchy, branch_unit):
        self.config = config
        self.hierarchy = hierarchy
        self.branch_unit = branch_unit
        self.cycle = 0
        self._group_used = 0
        self._last_line = None
        self.mispredictions = 0
        self.misfetches = 0

    def fetch(self, record):
        """Advance the front end past ``record``; returns its fetch cycle."""
        if self._group_used >= self.config.width:
            self.cycle += 1
            self._group_used = 0
        line = record.address // self.config.icache.line
        if line != self._last_line:
            self._last_line = line
            extra = self.hierarchy.ifetch(record.address)
            if extra:
                self.cycle += extra
                self._group_used = 0
        self._group_used += 1
        return self.cycle

    def resolve_control(self, record, complete_cycle):
        """Apply this control transfer's effect on the fetch stream.

        Returns True when the transfer mispredicted (the caller charges the
        execution-side resolution; fetch resumes ``redirect_latency`` after
        ``complete_cycle``).
        """
        mispredicted = self.branch_unit.process(record)
        if self.config.perfect_prediction:
            # oracle front end: predictors still train (for statistics),
            # but no penalty is ever charged
            if record.taken:
                self.cycle += 1
                self._group_used = 0
            return False
        if mispredicted:
            self.mispredictions += 1
            self.cycle = max(self.cycle,
                             complete_cycle + self.config.redirect_latency)
            self._group_used = 0
            self._last_line = None
            return True
        if record.taken:
            # correctly predicted taken transfer still ends the fetch group
            self.cycle += 1
            self._group_used = 0
        return False

    def note_misfetch(self):
        """A taken branch that hit the predictor but missed the BTB."""
        self.misfetches += 1
        self.cycle += self.config.redirect_latency
        self._group_used = 0
