"""Cycle-stepped simulation of the ILDP microarchitecture.

Where :class:`~repro.uarch.ildp.ILDPModel` computes per-instruction ready
times in a single pass (fast, SimpleScalar-style), this model advances a
clock and moves instructions through explicit pipeline structures every
cycle:

* a fetch stage feeding a decode/steer queue (width-limited, stalled by
  I-cache misses and branch redirects);
* a steer stage that binds each instruction's operands to their producing
  in-flight instructions *in program order* (register renaming semantics)
  and places it into a bounded per-PE issue FIFO (strand renaming +
  dependence-based steering, like the fast model);
* per-PE in-order single-issue from the FIFO heads — an instruction issues
  once every bound producer has completed, charging the global
  communication latency for GPR values produced in another PE;
* a reorder buffer committing up to ``width`` instructions in order.

It is slower than the one-pass model (the repro band for this paper flags
cycle-level simulation as the bottleneck, which is why the experiment
harness defaults to the fast model), but it serves as the reference
implementation: the test suite cross-validates the two models against each
other.
"""

from collections import deque

from repro.uarch.cache import MemoryHierarchy
from repro.uarch.predictors import BranchUnit
from repro.uarch.superscalar import TimingResult


class _Entry:
    """One in-flight instruction."""

    __slots__ = ("record", "seq", "pe", "deps", "complete_cycle")

    def __init__(self, record, seq):
        self.record = record
        self.seq = seq
        self.pe = None
        #: [(producer entry, is_gpr_dep)] bound at steer time
        self.deps = []
        self.complete_cycle = None  # set at issue (known latency)


class CycleILDPModel:
    """Cycle-stepped reference model of the PE-FIFO machine."""

    def __init__(self, config):
        if config.pe_count is None:
            raise ValueError("CycleILDPModel needs a config with pe_count")
        self.config = config
        self.hierarchy = MemoryHierarchy(config)
        self.branch_unit = BranchUnit(config)

    def run(self, trace):
        config = self.config
        pe_count = config.pe_count
        width = config.width
        comm = config.comm_latency

        trace = list(trace)
        instructions = len(trace)
        v_instructions = sum(record.v_weight for record in trace)

        fetch_index = 0
        fetch_stall_until = 0
        last_fetch_line = None
        steer_queue = deque()
        fifos = [deque() for _ in range(pe_count)]
        rob = deque()
        reg_writer = {}            # gpr -> producing entry (program order)
        acc_writer = {}            # acc -> producing entry
        acc_pe = {}
        cycle = 0
        seq = 0
        blocking_branch = None     # mispredicted branch entry in flight

        max_cycles = 300 * max(instructions, 1) + 10_000

        while (fetch_index < len(trace) or steer_queue or rob) and \
                cycle < max_cycles:
            # ---- resolve a blocking mispredicted branch ----
            if blocking_branch is not None and \
                    blocking_branch.complete_cycle is not None and \
                    blocking_branch.complete_cycle <= cycle:
                fetch_stall_until = max(
                    fetch_stall_until,
                    blocking_branch.complete_cycle
                    + config.redirect_latency)
                blocking_branch = None

            # ---- commit: in-order, bounded bandwidth ----
            committed = 0
            while rob and committed < width:
                head = rob[0]
                if head.complete_cycle is None or \
                        head.complete_cycle > cycle:
                    break
                rob.popleft()
                committed += 1

            # ---- issue: each PE's FIFO head, when its producers forwarded ----
            for pe in range(pe_count):
                fifo = fifos[pe]
                if not fifo:
                    continue
                entry = fifo[0]
                if self._ready(entry, cycle, comm):
                    fifo.popleft()
                    entry.complete_cycle = cycle + \
                        self._latency(entry.record)

            # ---- steer: program order, bounded by width / FIFO / ROB ----
            steered = 0
            while steer_queue and steered < width and \
                    len(rob) < config.rob_size:
                entry = steer_queue[0]
                record = entry.record
                pe = self._steer(record, acc_pe, fifos, reg_writer)
                if len(fifos[pe]) >= config.fifo_depth:
                    break
                steer_queue.popleft()
                entry.pe = pe
                if record.acc is not None:
                    if record.strand_start or record.acc not in acc_pe:
                        acc_pe[record.acc] = pe
                    else:
                        entry.pe = pe = acc_pe[record.acc]
                self._bind_dependences(entry, reg_writer, acc_writer)
                fifos[pe].append(entry)
                rob.append(entry)
                steered += 1

            # ---- fetch ----
            if blocking_branch is None and cycle >= fetch_stall_until:
                fetched = 0
                while fetch_index < len(trace) and fetched < width:
                    record = trace[fetch_index]
                    line = record.address // config.icache.line
                    if line != last_fetch_line:
                        last_fetch_line = line
                        extra = self.hierarchy.ifetch(record.address)
                        if extra:
                            fetch_stall_until = cycle + extra
                            break
                    entry = _Entry(record, seq)
                    seq += 1
                    fetch_index += 1
                    fetched += 1
                    steer_queue.append(entry)
                    self.branch_unit.note_instruction(record.v_weight)
                    if record.btype is not None:
                        mispredicted = self.branch_unit.process(record)
                        if mispredicted and not \
                                config.perfect_prediction:
                            blocking_branch = entry
                            break
                        if record.taken:
                            break  # predicted-taken transfer ends group

            cycle += 1

        return TimingResult(cycle, instructions, v_instructions,
                            self.branch_unit.stats,
                            f"{self.config.name}-cycle")

    # -- helpers ---------------------------------------------------------------

    def _bind_dependences(self, entry, reg_writer, acc_writer):
        """Program-order operand binding — the renaming step."""
        record = entry.record
        for src in record.srcs:
            producer = reg_writer.get(src)
            if producer is not None:
                entry.deps.append((producer, True))
        if record.acc_read and record.acc is not None:
            producer = acc_writer.get(record.acc)
            if producer is not None:
                entry.deps.append((producer, False))
        if record.dst is not None:
            reg_writer[record.dst] = entry
        if record.acc_write and record.acc is not None:
            acc_writer[record.acc] = entry

    def _ready(self, entry, cycle, comm):
        for producer, is_gpr in entry.deps:
            when = producer.complete_cycle
            if when is None:
                return False
            if is_gpr and producer.pe != entry.pe:
                when += comm
            if when > cycle:
                return False
        return True

    def _steer(self, record, acc_pe, fifos, reg_writer):
        config = self.config
        acc = record.acc
        if config.steering == "modulo":
            if acc is not None:
                return acc % config.pe_count
            return self._least_loaded(fifos)
        if acc is not None and not record.strand_start and acc in acc_pe:
            return acc_pe[acc]
        if config.steering == "dependence":
            # steer toward the producer of the youngest unfinished input
            best = None
            for src in record.srcs:
                producer = reg_writer.get(src)
                if producer is not None and producer.pe is not None and \
                        (best is None or producer.seq > best.seq):
                    best = producer
            if best is not None and \
                    len(fifos[best.pe]) < config.fifo_depth - 1:
                return best.pe
        return self._least_loaded(fifos)

    def _least_loaded(self, fifos):
        lengths = [len(fifo) for fifo in fifos]
        return lengths.index(min(lengths))

    def _latency(self, record):
        op_class = record.op_class
        if op_class == "load":
            if self.config.perfect_dcache:
                return self.config.dcache.latency
            return self.hierarchy.daccess(
                record.mem_addr if record.mem_addr is not None
                else record.address)
        if op_class == "mul":
            return self.config.mul_latency
        if op_class == "store" and record.mem_addr is not None:
            self.hierarchy.daccess(record.mem_addr)
            return self.config.int_latency
        return max(self.config.int_latency, 1)
