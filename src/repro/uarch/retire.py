"""In-order retirement with bounded bandwidth and ROB occupancy.

Shared by both timing models: a 128-entry reorder buffer committing up to
4 instructions per cycle in program order (Table 1).
"""

from collections import deque


class RetireUnit:
    """Models the ROB tail."""

    def __init__(self, rob_size=128, bandwidth=4):
        self.rob_size = rob_size
        self.bandwidth = bandwidth
        self._rob = deque()          # retire cycles of in-flight entries
        self._retire_cycle = 0
        self._retired_this_cycle = 0
        self.last_retire = 0

    def admit(self, dispatch_cycle):
        """Reserve a ROB slot; returns the (possibly delayed) dispatch cycle
        once space exists."""
        rob = self._rob
        while rob and rob[0] <= dispatch_cycle:
            rob.popleft()
        if len(rob) >= self.rob_size:
            dispatch_cycle = rob[0]
            while rob and rob[0] <= dispatch_cycle:
                rob.popleft()
        return dispatch_cycle

    def retire(self, complete_cycle):
        """Retire in order after completion; returns the retire cycle."""
        cycle = max(complete_cycle + 1, self._retire_cycle)
        if cycle == self._retire_cycle:
            if self._retired_this_cycle >= self.bandwidth:
                cycle += 1
                self._retired_this_cycle = 0
        else:
            self._retired_this_cycle = 0
        self._retire_cycle = cycle
        self._retired_this_cycle += 1
        self._rob.append(cycle)
        self.last_retire = max(self.last_retire, cycle)
        return cycle
