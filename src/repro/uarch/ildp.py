"""Trace-driven timing model of the ILDP distributed microarchitecture.

Table 1, right column, and Section 1.1 of the paper: a pipelined 4-wide
front end steers instructions by accumulator number into 4/6/8 parallel
in-order issue FIFOs (one per processing element).  Each PE issues one
instruction per cycle from its FIFO head when operands are ready:

* the accumulator operand comes from the previous instruction of the same
  strand, which lives in the same PE (zero-latency forwarding);
* GPR operands produced in *another* PE incur the global communication
  latency (0 or 2 cycles in the paper's experiments);
* L1 data caches are replicated across PEs (same latency, fewer ports —
  the model charges the same 2-cycle hit latency to both machines, as the
  paper does).

A shared 128-entry reorder buffer retires 4 instructions per cycle.
"""

from collections import deque

from repro.uarch.cache import MemoryHierarchy
from repro.uarch.frontend import FrontEnd
from repro.uarch.predictors import BranchUnit
from repro.uarch.retire import RetireUnit
from repro.uarch.superscalar import TimingResult


class ILDPModel:
    """One-pass trace-driven model of the PE-FIFO machine."""

    def __init__(self, config):
        if config.pe_count is None:
            raise ValueError("ILDPModel needs a config with pe_count set")
        self.config = config
        self.hierarchy = MemoryHierarchy(config)
        self.branch_unit = BranchUnit(config)
        self.frontend = FrontEnd(config, self.hierarchy, self.branch_unit)
        self.retire_unit = RetireUnit(config.rob_size, config.width)
        pe_count = config.pe_count
        self._pe_last_issue = [0] * pe_count
        self._pe_fifo = [deque() for _ in range(pe_count)]
        #: GPR index -> (ready cycle, producing PE)
        self._reg_ready = {}
        #: accumulator -> ready cycle (accumulators live inside one PE)
        self._acc_ready = {}
        #: accumulator renaming: strand id -> PE assigned at strand start
        self._acc_pe = {}
        #: 8-byte block -> completion cycle of the last store to it
        self._mem_ready = {}
        self._instructions = 0
        self._v_instructions = 0

    def run(self, trace):
        for record in trace:
            self.step(record)
        return self.result()

    def step(self, record):
        config = self.config
        self._instructions += 1
        self._v_instructions += record.v_weight
        self.branch_unit.note_instruction(record.v_weight)

        fetch = self.frontend.fetch(record)
        dispatch = fetch + config.pipeline_depth
        dispatch = self.retire_unit.admit(dispatch)

        pe = self._steer(record)
        fifo = self._pe_fifo[pe]
        while fifo and fifo[0] <= dispatch:
            fifo.popleft()
        if len(fifo) >= config.fifo_depth:
            # steering stalls until the FIFO head issues
            dispatch = fifo[0]
            while fifo and fifo[0] <= dispatch:
                fifo.popleft()

        ready = dispatch
        if record.acc_read and record.acc is not None:
            when = self._acc_ready.get(record.acc)
            if when is not None and when > ready:
                ready = when
        for src in record.srcs:
            entry = self._reg_ready.get(src)
            if entry is not None:
                when, producer_pe = entry
                if producer_pe != pe:
                    when += config.comm_latency
                if when > ready:
                    ready = when
        block = None
        if record.mem_addr is not None:
            block = record.mem_addr >> 3
            if record.op_class == "load":
                when = self._mem_ready.get(block)
                if when is not None and when > ready:
                    ready = when  # store-to-load dependence

        # in-order single issue per PE
        start = max(ready, self._pe_last_issue[pe] + 1)
        self._pe_last_issue[pe] = start
        fifo.append(start)

        complete = start + self._latency(record)
        if record.acc_write and record.acc is not None:
            self._acc_ready[record.acc] = complete
        if record.dst is not None:
            self._reg_ready[record.dst] = (complete, pe)
        if block is not None and record.op_class == "store":
            self._mem_ready[block] = complete
        self.retire_unit.retire(complete)

        if record.is_control():
            self.frontend.resolve_control(record, complete)

    def _steer(self, record):
        """Dependence-based steering with accumulator renaming.

        Following the ISCA 2002 microarchitecture: a strand-*start*
        instruction picks a PE — preferring the PE that produced its
        critical GPR input (so the communication latency is not paid),
        falling back to the least-loaded FIFO — and the accumulator is
        renamed to that PE until the strand ends.  Later instructions of
        the strand simply follow their accumulator.  GPR-only instructions
        (stores, branches with global inputs) take the least-loaded PE.
        """
        acc = record.acc
        if self.config.steering == "modulo":
            if acc is not None:
                return acc % self.config.pe_count
            return self._least_loaded_pe()
        if acc is not None and not record.strand_start:
            pe = self._acc_pe.get(acc)
            if pe is not None:
                return pe
        pe = self._choose_start_pe(record)
        if acc is not None:
            self._acc_pe[acc] = pe
        return pe

    def _choose_start_pe(self, record):
        if self.config.steering == "dependence":
            # prefer the producer PE of the latest-arriving GPR input,
            # unless its FIFO is congested
            best_input = None
            for src in record.srcs:
                entry = self._reg_ready.get(src)
                if entry is not None and (best_input is None
                                          or entry[0] > best_input[0]):
                    best_input = entry
            if best_input is not None:
                pe = best_input[1]
                if len(self._pe_fifo[pe]) < self.config.fifo_depth - 1:
                    return pe
        return self._least_loaded_pe()

    def _least_loaded_pe(self):
        best = 0
        best_load = None
        for pe, last in enumerate(self._pe_last_issue):
            load = (len(self._pe_fifo[pe]), last)
            if best_load is None or load < best_load:
                best = pe
                best_load = load
        return best

    def _latency(self, record):
        op_class = record.op_class
        if op_class == "load":
            if self.config.perfect_dcache:
                return self.config.dcache.latency
            return self.hierarchy.daccess(record.mem_addr
                                          if record.mem_addr is not None
                                          else record.address)
        if op_class == "mul":
            return self.config.mul_latency
        if op_class == "store" and record.mem_addr is not None:
            if not self.config.perfect_dcache:
                self.hierarchy.daccess(record.mem_addr)
            return self.config.int_latency
        return self.config.int_latency

    def result(self):
        return TimingResult(self.retire_unit.last_retire,
                            self._instructions, self._v_instructions,
                            self.branch_unit.stats, self.config.name)
