"""Building timing traces from plain interpretation.

The paper's "original" configuration is the unmodified Alpha binary running
on the superscalar simulator.  This module runs the interpreter over a
program and converts each executed instruction into a
:class:`~repro.vm.events.TraceRecord`, including the branch-type
annotations the predictor models need (conventional RAS push/pop on
BSR/JSR/RET).
"""

from repro.interp.interpreter import Halted, Interpreter
from repro.isa.opcodes import Format, Kind
from repro.vm.events import TraceRecord

_MUL_MNEMONICS = frozenset({"mull", "mulq", "umulh"})


def _branch_type(instr):
    kind = instr.kind
    if kind is Kind.COND_BRANCH:
        return "cond"
    if kind is Kind.UNCOND_BRANCH:
        return "call" if instr.ra != 31 else "uncond"
    if kind is Kind.JUMP:
        if instr.mnemonic == "ret":
            return "ret"
        if instr.ra != 31:
            return "call_ind"
        return "indirect"
    return None


def _op_class(instr):
    kind = instr.kind
    if kind is Kind.LOAD:
        return "load"
    if kind is Kind.STORE:
        return "store"
    if kind in (Kind.COND_BRANCH, Kind.UNCOND_BRANCH, Kind.JUMP):
        return "branch"
    if instr.mnemonic in _MUL_MNEMONICS:
        return "mul"
    return "int"


def _is_nop(instr):
    if instr.fmt is Format.OPERATE and instr.rc == 31:
        return True
    return instr.kind is Kind.LDA and instr.ra == 31


def record_for_event(event):
    """Convert one interpreter :class:`ExecEvent` into a trace record."""
    instr = event.instr
    btype = _branch_type(instr)
    return TraceRecord(
        event.pc, 4, _op_class(instr),
        srcs=instr.sources(),
        dst=instr.dest(),
        btype=btype,
        taken=event.taken,
        target=event.next_pc if event.taken else None,
        mem_addr=event.mem_addr,
        v_weight=0 if _is_nop(instr) else 1,
    )


def interpreter_trace(program, max_instructions=200_000):
    """Run ``program`` under pure interpretation, collecting a trace.

    Returns ``(trace, interpreter)``; the interpreter exposes final state
    and console output for verification.
    """
    interpreter = Interpreter(program)
    trace = []
    try:
        for _ in range(max_instructions):
            event = interpreter.step()
            trace.append(record_for_event(event))
    except Halted:
        pass
    return trace, interpreter
