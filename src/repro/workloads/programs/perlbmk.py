"""253.perlbmk stand-in: threaded-code opcode dispatch — every handler ends
in its own register-indirect jump (many indirect-jump sites, the highest
chaining stress in the suite) plus a string-hash helper called per op."""

DESCRIPTION = "threaded-code dispatch, many indirect jump sites"

_PROGLEN = 80


def build(scale):
    iterations = 16 * scale
    return f"""
        .text
_start: br   setup

        ; hash(r16=char) -> r0; small helper called from handlers
hash:   mulq r16, 131, r0
        xor  r0, r25, r0
        zapnot r0, 3, r0
        mov  r0, r25
        ret

        ; threaded handlers: each fetches and dispatches the next op itself
op_a:   addq r1, 5, r1
        sll  r1, 3, r2
        xor  r1, r2, r1
        srl  r1, 7, r2
        addq r1, r2, r1
        zapnot r1, 3, r1
        ldbu r3, 0(r16)
        lda  r16, 1(r16)
        subl r17, 1, r17
        beq  r17, done
        s8addq r3, r9, r13
        ldq  r27, 0(r13)
        jmp  r31, (r27)
op_b:   xor  r1, r17, r1
        mulq r1, 13, r2
        srl  r2, 4, r2
        addq r1, r2, r1
        zapnot r1, 3, r1
        ldbu r3, 0(r16)
        lda  r16, 1(r16)
        subl r17, 1, r17
        beq  r17, done
        s8addq r3, r9, r13
        ldq  r27, 0(r13)
        jmp  r31, (r27)
op_c:   mov  r1, r18
        and  r18, 0x7f, r18
        stq  r16, 24(r30)
        stq  r17, 32(r30)
        mov  r18, r16
        bsr  r26, hash
        addq r1, r0, r1
        ldq  r16, 24(r30)
        ldq  r17, 32(r30)
        ldbu r3, 0(r16)
        lda  r16, 1(r16)
        subl r17, 1, r17
        beq  r17, done
        s8addq r3, r9, r13
        ldq  r27, 0(r13)
        jmp  r31, (r27)
op_d:   sll  r1, 1, r1
        zapnot r1, 3, r1
        subq r1, 3, r2
        and  r2, 63, r2
        addq r1, r2, r1
        cmplt r1, 200, r2
        cmovne r2, r2, r1
        ldbu r3, 0(r16)
        lda  r16, 1(r16)
        subl r17, 1, r17
        beq  r17, done
        s8addq r3, r9, r13
        ldq  r27, 0(r13)
        jmp  r31, (r27)

done:   subq r15, 1, r15
        bne  r15, restart
        and  r1, 0x7f, r16
        call_pal putc
        call_pal halt

restart:
        la   r16, script
        li   r17, {_PROGLEN}
        ldbu r3, 0(r16)
        lda  r16, 1(r16)
        s8addq r3, r9, r13
        ldq  r27, 0(r13)
        jmp  r31, (r27)

setup:  la   r9, script
        li   r10, {_PROGLEN}
        li   r11, 119
sfill:  mulq r11, 45, r11
        addq r11, 7, r11
        srl  r11, 3, r12
        and  r12, 3, r12
        stb  r12, 0(r9)
        lda  r9, 1(r9)
        subq r10, 1, r10
        bne  r10, sfill

        la   r9, table
        la   r10, taddrs
        li   r12, 4
tcopy:  ldq  r11, 0(r10)
        stq  r11, 0(r9)
        lda  r9, 8(r9)
        lda  r10, 8(r10)
        subq r12, 1, r12
        bne  r12, tcopy

        lda  r30, -64(r30)
        clr  r1
        clr  r25
        li   r15, {iterations}
        la   r9, table
        br   restart

        .data
script: .space {_PROGLEN}
        .align 8
table:  .space 32
taddrs: .quad op_a
        .quad op_b
        .quad op_c
        .quad op_d
"""
