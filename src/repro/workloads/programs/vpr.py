"""175.vpr stand-in: routing-cost array sweeps — multiply/accumulate over
parallel arrays with conditional minimum tracking."""

DESCRIPTION = "multiply/accumulate sweeps with conditional min tracking"

_N = 128


def build(scale):
    sweeps = 16 * scale
    return f"""
        .text
_start: la   r9, xs
        la   r10, ys
        li   r11, {_N}
        li   r12, 71
fill:   mulq r12, 93, r12
        addq r12, 27, r12
        and  r12, 0xff, r13
        stq  r13, 0(r9)
        srl  r12, 4, r14
        and  r14, 0xff, r14
        stq  r14, 0(r10)
        lda  r9, 8(r9)
        lda  r10, 8(r10)
        subq r11, 1, r11
        bne  r11, fill

        li   r15, {sweeps}
        clr  r1              ; accumulated cost
        li   r2, 0xffff      ; running minimum
pass:   la   r9, xs
        la   r10, ys
        li   r11, {_N}
sweep:  ldq  r3, 0(r9)
        ldq  r4, 0(r10)
        mulq r3, r4, r5
        addq r1, r5, r1
        addq r3, r4, r6
        cmplt r6, r2, r7
        cmovne r7, r6, r2
        ; occasionally re-weight the x entry
        blbs r5, reweight
        br   nextel
reweight:
        addq r3, 1, r3
        stq  r3, 0(r9)
nextel: lda  r9, 8(r9)
        lda  r10, 8(r10)
        subq r11, 1, r11
        bne  r11, sweep
        subq r15, 1, r15
        bne  r15, pass

        addq r1, r2, r16
        and  r16, 0x7f, r16
        call_pal putc
        call_pal halt

        .data
        .align 8
xs:     .space {_N * 8}
ys:     .space {_N * 8}
"""
