"""256.bzip2 stand-in: byte histogram plus repeated partial sorting passes
over the counts — loop-heavy with a branchy compare-and-swap inner loop."""

DESCRIPTION = "histogram + bubble-sort passes (block-sort flavour)"

_BUF = 384
_SORTN = 48


def build(scale):
    passes = 4 * scale
    return f"""
        .text
_start: la   r9, buf
        li   r10, {_BUF}
        li   r11, 47
fill:   mulq r11, 75, r11
        addq r11, 61, r11
        srl  r11, 3, r12
        and  r12, 0xff, r12
        stb  r12, 0(r9)
        lda  r9, 1(r9)
        subq r10, 1, r10
        bne  r10, fill

        li   r15, {passes}
pass:
        ; --- clear the histogram ---
        la   r9, hist
        li   r10, 256
clr0:   stq  r31, 0(r9)
        lda  r9, 8(r9)
        subq r10, 1, r10
        bne  r10, clr0

        ; --- histogram the buffer ---
        la   r16, buf
        li   r17, {_BUF}
        la   r9, hist
hloop:  ldbu r3, 0(r16)
        lda  r16, 1(r16)
        s8addq r3, r9, r4
        ldq  r5, 0(r4)
        addq r5, 1, r5
        stq  r5, 0(r4)
        subl r17, 1, r17
        bne  r17, hloop

        ; --- bubble passes over the first {_SORTN} counters ---
        li   r20, 8
outer:  la   r9, hist
        li   r10, {_SORTN - 1}
inner:  ldq  r3, 0(r9)
        ldq  r4, 8(r9)
        cmple r3, r4, r5
        bne  r5, noswap
        stq  r4, 0(r9)
        stq  r3, 8(r9)
noswap: lda  r9, 8(r9)
        subq r10, 1, r10
        bne  r10, inner
        subq r20, 1, r20
        bne  r20, outer

        subq r15, 1, r15
        bne  r15, pass

        la   r9, hist
        ldq  r16, 0(r9)
        and  r16, 0x7f, r16
        call_pal putc
        call_pal halt

        .data
buf:    .space {_BUF}
        .align 8
hist:   .space 2048
"""
