"""176.gcc stand-in: branchy decision cascades over a token stream — many
small basic blocks, data-dependent branch directions, moderate calls."""

DESCRIPTION = "token classification cascades (many basic blocks)"

_TOKENS = 320


def build(scale):
    passes = 10 * scale
    return f"""
        .text
_start: br   setup

classify:                      ; token in r16 -> class counter updates
        cmpult r16, 32, r1
        beq  r1, notctl
        addq r20, 1, r20       ; control character
        mulq r16, 3, r0
        ret
notctl: cmpult r16, 48, r1
        beq  r1, notpunct
        addq r21, 1, r21       ; punctuation
        xor  r16, r20, r0
        ret
notpunct:
        cmpult r16, 58, r1
        beq  r1, notdigit
        addq r22, 1, r22       ; digit
        subq r16, 48, r2
        s4addq r2, r22, r0
        ret
notdigit:
        cmpult r16, 91, r1
        beq  r1, notupper
        addq r23, 1, r23       ; upper-case letter
        blbs r16, uodd
        addq r23, 2, r23
        mov  r16, r0
        ret
uodd:   sll  r16, 1, r0
        ret
notupper:
        cmpult r16, 123, r1
        beq  r1, other
        addq r24, 1, r24       ; lower-case letter
        subq r16, 32, r0
        ret
other:  addq r25, 1, r25
        clr  r0
        ret

setup:  la   r9, tokens
        li   r10, {_TOKENS}
        li   r11, 33
tfill:  mulq r11, 97, r11
        addq r11, 41, r11
        srl  r11, 1, r12
        and  r12, 0x7f, r12
        stb  r12, 0(r9)
        lda  r9, 1(r9)
        subq r10, 1, r10
        bne  r10, tfill

        clr  r20
        clr  r21
        clr  r22
        clr  r23
        clr  r24
        clr  r25
        clr  r14
        li   r15, {passes}
pass:   la   r18, tokens
        li   r17, {_TOKENS}
tok:    ldbu r16, 0(r18)
        lda  r18, 1(r18)
        bsr  r26, classify
        addq r14, r0, r14
        subl r17, 1, r17
        bne  r17, tok
        subq r15, 1, r15
        bne  r15, pass

        and  r14, 0x7f, r16
        call_pal putc
        call_pal halt

        .data
tokens: .space {_TOKENS}
"""
