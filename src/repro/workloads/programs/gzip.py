"""164.gzip stand-in: byte-stream CRC (the paper's Fig. 2 inner loop) plus a
run-length pass.  Tight loops over a byte buffer, almost no calls."""

DESCRIPTION = "byte-stream CRC and run-length loops (Fig. 2 kernel)"

_BUF = 512


def build(scale):
    passes = 6 * scale
    return f"""
        ; --- init: fill the buffer with LCG bytes, build the CRC table ---
        .text
_start: la   r9, buf
        li   r10, {_BUF}
        li   r11, 91
fill:   mulq r11, 137, r11
        addq r11, 29, r11
        and  r11, 0xff, r12
        stb  r12, 0(r9)
        lda  r9, 1(r9)
        subq r10, 1, r10
        bne  r10, fill

        la   r9, table
        li   r10, 256
        clr  r11
tblf:   sll  r11, 3, r12
        xor  r12, r11, r12
        mulq r12, 31, r12
        stq  r12, 0(r9)
        lda  r9, 8(r9)
        addq r11, 1, r11
        subq r10, 1, r10
        bne  r10, tblf

        ; --- main: CRC passes over the buffer (the Fig. 2 loop) ---
        li   r15, {passes}
pass:   la   r16, buf
        li   r17, {_BUF}
        clr  r1
        la   r0, table
crc:    ldbu r3, 0(r16)
        subl r17, 1, r17
        lda  r16, 1(r16)
        xor  r1, r3, r3
        srl  r1, 8, r1
        and  r3, 0xff, r3
        s8addq r3, r0, r3
        ldq  r3, 0(r3)
        xor  r3, r1, r1
        bne  r17, crc

        ; --- run-length pass ---
        la   r16, buf
        li   r17, {_BUF}
        clr  r4
        clr  r5
        clr  r6
rle:    ldbu r3, 0(r16)
        lda  r16, 1(r16)
        subl r17, 1, r17
        cmpeq r3, r5, r7
        beq  r7, newrun
        addq r4, 1, r4
        br   rledone
newrun: addq r6, 1, r6
        mov  r3, r5
        clr  r4
rledone:
        bne  r17, rle
        subq r15, 1, r15
        bne  r15, pass

        and  r1, 0x7f, r16
        call_pal putc
        call_pal halt

        .data
buf:    .space {_BUF}
        .align 8
table:  .space 2048
"""
