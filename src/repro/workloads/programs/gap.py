"""254.gap stand-in: a bytecode interpreter with a central jump-table
dispatch (one hot register-indirect jump with several targets)."""

DESCRIPTION = "bytecode interpreter, jump-table dispatch"

_PROGLEN = 96


def build(scale):
    iterations = 24 * scale
    return f"""
        .text
_start: br   setup

        ; --- opcode handlers; each returns to the dispatch loop ---
op_add: addq r1, r3, r1
        br   next
op_sub: subq r1, 2, r1
        br   next
op_mul: mulq r1, 3, r1
        zapnot r1, 3, r1
        br   next
op_shl: sll  r1, 1, r1
        zapnot r1, 3, r1
        br   next
op_xor: xor  r1, r3, r1
        br   next
op_nop: br   next

setup:  ; build the bytecode program (opcodes 0..5)
        la   r9, bytecode
        li   r10, {_PROGLEN}
        li   r11, 201
bfill:  mulq r11, 53, r11
        addq r11, 11, r11
        srl  r11, 2, r12
        and  r12, 7, r12
        cmpult r12, 6, r13
        bne  r13, bok
        clr  r12
bok:    stb  r12, 0(r9)
        lda  r9, 1(r9)
        subq r10, 1, r10
        bne  r10, bfill

        ; build the handler table
        la   r9, handlers
        la   r10, haddrs
        li   r12, 6
hcopy:  ldq  r11, 0(r10)
        stq  r11, 0(r9)
        lda  r9, 8(r9)
        lda  r10, 8(r10)
        subq r12, 1, r12
        bne  r12, hcopy

        li   r15, {iterations}
        clr  r1
outer:  la   r16, bytecode
        li   r17, {_PROGLEN}
        la   r9, handlers
dispatch:
        ldbu r3, 0(r16)
        lda  r16, 1(r16)
        s8addq r3, r9, r13
        ldq  r27, 0(r13)
        jmp  r31, (r27)
next:   subl r17, 1, r17
        bne  r17, dispatch
        subq r15, 1, r15
        bne  r15, outer

        and  r1, 0x7f, r16
        call_pal putc
        call_pal halt

        .data
bytecode: .space {_PROGLEN}
        .align 8
handlers: .space 48
haddrs: .quad op_add
        .quad op_sub
        .quad op_mul
        .quad op_shl
        .quad op_xor
        .quad op_nop
"""
