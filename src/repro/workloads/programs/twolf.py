"""300.twolf stand-in: placement-style nested loops with conditional
exchanges (cmov-heavy) over a small grid of cell costs."""

DESCRIPTION = "nested loops with conditional moves/swaps over a grid"

_CELLS = 96


def build(scale):
    passes = 18 * scale
    return f"""
        .text
_start: la   r9, grid
        li   r10, {_CELLS}
        li   r11, 63
fill:   mulq r11, 109, r11
        addq r11, 31, r11
        and  r11, 0xff, r12
        stq  r12, 0(r9)
        lda  r9, 8(r9)
        subq r10, 1, r10
        bne  r10, fill

        li   r15, {passes}
        clr  r1              ; accepted moves
        clr  r2              ; best cost
pass:   la   r9, grid
        li   r10, {_CELLS - 2}
cell:   ldq  r3, 0(r9)
        ldq  r4, 8(r9)
        ldq  r5, 16(r9)
        ; trial cost = (a + c) / 2 mixed with b
        addq r3, r5, r6
        srl  r6, 1, r6
        xor  r6, r4, r7
        and  r7, 0xff, r7
        ; keep the better (smaller) of trial and current middle via cmov
        cmplt r7, r4, r8
        cmovne r8, r7, r4
        stq  r4, 8(r9)
        addq r1, r8, r1
        ; track the maximum cost seen via cmov
        cmplt r2, r4, r8
        cmovne r8, r4, r2
        lda  r9, 8(r9)
        subq r10, 1, r10
        bne  r10, cell
        subq r15, 1, r15
        bne  r15, pass

        addq r1, r2, r16
        and  r16, 0x7f, r16
        call_pal putc
        call_pal halt

        .data
        .align 8
grid:   .space {_CELLS * 8}
"""
