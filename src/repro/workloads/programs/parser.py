"""197.parser stand-in: binary recursive descent with stack frames — deep
BSR/RET recursion, the return-address-stack stress case."""

DESCRIPTION = "recursive descent (deep call/return recursion)"

_DEPTH = 7  # 2^7 = 128 leaf calls per tree walk


def build(scale):
    walks = 16 * scale
    return f"""
        .text
_start: br   main

        ; parse(depth in r16) -> value in r0
parse:  lda  r30, -32(r30)
        stq  r26, 0(r30)
        stq  r16, 8(r30)
        bne  r16, inner
        ; leaf: hash the leaf counter
        addq r19, 1, r19
        mulq r19, 31, r0
        xor  r0, r19, r0
        ldq  r26, 0(r30)
        lda  r30, 32(r30)
        ret
inner:  subq r16, 1, r16
        bsr  r26, parse      ; left child
        stq  r0, 16(r30)
        ldq  r16, 8(r30)
        subq r16, 1, r16
        bsr  r26, parse      ; right child
        ldq  r2, 16(r30)
        addq r0, r2, r0
        sll  r0, 1, r1
        xor  r0, r1, r0
        ldq  r26, 0(r30)
        lda  r30, 32(r30)
        ret

main:   clr  r19
        clr  r14
        li   r15, {walks}
walk:   li   r16, {_DEPTH}
        bsr  r26, parse
        addq r14, r0, r14
        subq r15, 1, r15
        bne  r15, walk

        and  r14, 0x7f, r16
        call_pal putc
        call_pal halt

        .data
pad:    .space 16
"""
