"""186.crafty stand-in: 64-bit bitboard manipulation — population counts,
leading-zero scans, shift/xor mixing, and low-bit-conditional branches."""

DESCRIPTION = "bitboard popcount/scan/mix kernels"

_BOARDS = 64


def build(scale):
    passes = 24 * scale
    return f"""
        .text
_start: la   r9, boards
        li   r10, {_BOARDS}
        li   r11, 177
fill:   mulq r11, 89, r11
        addq r11, 123, r11
        sll  r11, 17, r12
        xor  r12, r11, r12
        stq  r12, 0(r9)
        lda  r9, 8(r9)
        subq r10, 1, r10
        bne  r10, fill

        li   r15, {passes}
        clr  r1              ; popcount accumulator
        clr  r2              ; scan accumulator
pass:   la   r9, boards
        li   r10, {_BOARDS}
scan:   ldq  r3, 0(r9)
        ctpop r3, r4
        addq r1, r4, r1
        ctlz r3, r5
        addq r2, r5, r2
        srl  r3, 7, r6
        xor  r6, r3, r6
        sll  r6, 3, r7
        xor  r7, r6, r7
        blbs r7, oddmix
        addq r7, 11, r7
        br   mixdone
oddmix: subq r7, 5, r7
        cttz r7, r8
        addq r2, r8, r2
mixdone:
        stq  r7, 0(r9)
        lda  r9, 8(r9)
        subq r10, 1, r10
        bne  r10, scan
        subq r15, 1, r15
        bne  r15, pass

        addq r1, r2, r16
        and  r16, 0x7f, r16
        call_pal putc
        call_pal halt

        .data
        .align 8
boards: .space {_BOARDS * 8}
"""
