"""One module per synthetic SPEC-INT-like benchmark program."""
