"""252.eon stand-in: C++-style virtual dispatch — a loop selecting one of
four "methods" through a function-pointer table and calling it with JSR."""

DESCRIPTION = "virtual calls through a function-pointer table"


def build(scale):
    calls = 1400 * scale
    return f"""
        .text
_start: br   main

        ; --- four small "virtual methods"; argument in r16, result in r0 ---
shade1: mulq r16, 7, r0
        addq r0, 3, r0
        sll  r0, 2, r1
        xor  r0, r1, r0
        srl  r0, 5, r1
        addq r0, r1, r0
        ret
shade2: sll  r16, 2, r0
        xor  r0, r16, r0
        subq r0, 11, r1
        mulq r1, 3, r1
        xor  r0, r1, r0
        ret
shade3: subq r16, 9, r0
        sra  r0, 1, r0
        and  r0, 127, r1
        s8addq r1, r0, r0
        srl  r0, 2, r0
        ret
shade4: and  r16, 63, r0
        s4addq r0, r16, r0
        ctpop r0, r1
        addq r0, r1, r0
        sll  r0, 1, r0
        ret

main:   la   r9, vtable
        la   r10, fn1p
        ldq  r11, 0(r10)
        stq  r11, 0(r9)      ; materialise the vtable at runtime
        la   r10, fn2p
        ldq  r11, 0(r10)
        stq  r11, 8(r9)
        la   r10, fn3p
        ldq  r11, 0(r10)
        stq  r11, 16(r9)
        la   r10, fn4p
        ldq  r11, 0(r10)
        stq  r11, 24(r9)

        li   r15, {calls}
        li   r13, 5          ; LCG state
        clr  r14             ; accumulator
loop:   mulq r13, 93, r13
        addq r13, 74, r13
        srl  r13, 9, r12
        and  r12, 3, r12     ; method selector
        s8addq r12, r9, r11
        ldq  r27, 0(r11)
        and  r13, 255, r16
        jsr  r26, (r27)
        addq r14, r0, r14
        subq r15, 1, r15
        bne  r15, loop

        and  r14, 0x7f, r16
        call_pal putc
        call_pal halt

        .data
        .align 8
vtable: .space 32
fn1p:   .quad shade1
fn2p:   .quad shade2
fn3p:   .quad shade3
fn4p:   .quad shade4
"""
