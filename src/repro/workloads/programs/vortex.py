"""255.vortex stand-in: an object database flavour — deep call chains and
record field copies (ldq/stq bursts), call/return dominated."""

DESCRIPTION = "deep call chains with record copies"

_RECORDS = 64
_REC_BYTES = 32


def build(scale):
    transactions = 700 * scale
    return f"""
        .text
_start: br   main

        ; layer3(record* r16) -> checksum in r0
layer3: ldq  r1, 0(r16)
        ldq  r2, 8(r16)
        addq r1, r2, r0
        ldq  r1, 16(r16)
        xor  r0, r1, r0
        ret

        ; layer2(record* r16): copy the record forward, checksum it
layer2: lda  r30, -16(r30)
        stq  r26, 0(r30)
        ldq  r1, 0(r16)
        stq  r1, 32(r16)
        ldq  r1, 8(r16)
        stq  r1, 40(r16)
        ldq  r1, 16(r16)
        stq  r1, 48(r16)
        ldq  r1, 24(r16)
        stq  r1, 56(r16)
        bsr  r26, layer3
        ldq  r26, 0(r30)
        lda  r30, 16(r30)
        ret

        ; layer1(index in r17): locate the record, update, descend
layer1: lda  r30, -16(r30)
        stq  r26, 0(r30)
        la   r2, records
        sll  r17, 5, r3
        addq r2, r3, r16
        ldq  r4, 24(r16)
        addq r4, 1, r4
        stq  r4, 24(r16)     ; bump access counter
        bsr  r26, layer2
        ldq  r26, 0(r30)
        lda  r30, 16(r30)
        ret

main:   la   r9, records
        li   r10, {_RECORDS * _REC_BYTES // 8}
        li   r11, 85
fill:   mulq r11, 57, r11
        addq r11, 19, r11
        stq  r11, 0(r9)
        lda  r9, 8(r9)
        subq r10, 1, r10
        bne  r10, fill

        li   r15, {transactions}
        li   r13, 9
        clr  r14
txn:    mulq r13, 37, r13
        addq r13, 11, r13
        and  r13, {_RECORDS // 2 - 1}, r17
        bsr  r26, layer1
        addq r14, r0, r14
        subq r15, 1, r15
        bne  r15, txn

        and  r14, 0x7f, r16
        call_pal putc
        call_pal halt

        .data
        .align 8
records: .space {_RECORDS * _REC_BYTES * 2}
"""
