"""181.mcf stand-in: pointer chasing over a linked node structure with
data-dependent cost updates — long dependent-load chains, poor locality."""

DESCRIPTION = "linked-node pointer chasing with cost relaxation"

_NODES = 256
_NODE_BYTES = 16  # [next_ptr, cost]


def build(scale):
    hops = 2200 * scale
    return f"""
        .text
_start: ; --- build a permuted singly-linked ring of {_NODES} nodes ---
        la   r9, nodes
        li   r10, {_NODES}
        clr  r11             ; index i
        li   r13, 0
build:  ; next index = (i * 53 + 1) mod {_NODES}  (53 coprime with {_NODES})
        mulq r11, 53, r12
        addq r12, 1, r12
        and  r12, {_NODES - 1}, r12
        sll  r12, 4, r14
        la   r13, nodes
        addq r13, r14, r14   ; address of successor node
        sll  r11, 4, r4
        la   r5, nodes
        addq r5, r4, r4      ; address of node i
        stq  r14, 0(r4)      ; node.next
        mulq r11, 7, r6
        addq r6, 13, r6
        stq  r6, 8(r4)       ; node.cost
        addq r11, 1, r11
        subq r10, 1, r10
        bne  r10, build

        ; --- chase the ring, relaxing costs ---
        la   r16, nodes
        li   r15, {hops}
        clr  r1              ; total
        li   r2, 64          ; threshold
chase:  ldq  r17, 0(r16)     ; next pointer (dependent load)
        ldq  r3, 8(r16)      ; cost
        addq r1, r3, r1
        cmplt r3, r2, r4
        beq  r4, heavy
        addq r3, 3, r3       ; cheap edge: bump cost
        br   store
heavy:  subq r3, 1, r3       ; expensive edge: relax
store:  stq  r3, 8(r16)
        mov  r17, r16
        subq r15, 1, r15
        bne  r15, chase

        and  r1, 0x7f, r16
        call_pal putc
        call_pal halt

        .data
        .align 16
nodes:  .space {_NODES * _NODE_BYTES}
"""
