"""Workload descriptors."""

from repro.asm import assemble


class WorkloadError(ValueError):
    """Unknown workload or bad scale parameter."""


class Workload:
    """A named synthetic benchmark.

    ``source(scale)`` renders the assembly text; ``program(scale)``
    assembles a fresh image (programs mutate their data segments, so every
    run needs its own copy).
    """

    def __init__(self, name, description, builder, default_scale=1):
        self.name = name
        self.description = description
        self._builder = builder
        self.default_scale = default_scale

    def source(self, scale=None):
        scale = self.default_scale if scale is None else scale
        if scale < 1:
            raise WorkloadError(f"scale must be >= 1, got {scale}")
        return self._builder(scale)

    def program(self, scale=None):
        return assemble(self.source(scale), source_name=self.name)

    def __repr__(self):
        return f"Workload({self.name!r})"


class BinaryWorkload(Workload):
    """A workload backed by a pre-encoded binary image, not assembly.

    Used by the fuzzer: generated programs exist as encoded words, so
    ``build_program`` constructs the image directly and there is no
    source text.  ``scale`` is accepted for interface compatibility but
    ignored.
    """

    def __init__(self, name, description, build_program):
        super().__init__(name, description, builder=None)
        self._build_program = build_program

    def source(self, scale=None):
        raise WorkloadError(f"{self.name} is a binary workload; "
                            "it has no assembly source")

    def program(self, scale=None):
        return self._build_program()

    def __repr__(self):
        return f"BinaryWorkload({self.name!r})"
