"""The synthetic SPEC CPU2000 INT workload suite.

The paper evaluates on the twelve SPEC INT benchmarks compiled for Alpha
EV6.  Real SPEC binaries cannot be run here, so each benchmark is replaced
by a synthetic Alpha-subset program matched to the original's control-flow
character — the property that actually drives DBT behaviour (superblock
shapes, chaining traffic, strand statistics):

================  ==========================================================
``gzip``/``bzip2``  tight byte-stream loops (CRC/RLE, histogram + sort pass)
``crafty``          64-bit bitboard manipulation (popcount, shifts, mixing)
``eon``             virtual-call style indirect calls through a table
``gap``             bytecode interpreter with jump-table dispatch
``gcc``             branchy decision cascades over a token stream
``mcf``             pointer chasing over linked structures
``parser``          recursive descent (deep BSR/RET recursion)
``perlbmk``         opcode dispatch, highest indirect-jump rate
``twolf``           nested loops with conditional swaps (cmov)
``vortex``          deep call chains with record copies
``vpr``             array sweeps with multiply/accumulate and cmov
================  ==========================================================
"""

from repro.workloads.base import Workload, WorkloadError
from repro.workloads.suite import (
    WORKLOAD_NAMES,
    get_workload,
    all_workloads,
)

__all__ = [
    "Workload",
    "WorkloadError",
    "WORKLOAD_NAMES",
    "get_workload",
    "all_workloads",
]
