"""The workload registry."""

from repro.workloads.base import Workload, WorkloadError
from repro.workloads.programs import (
    bzip2,
    crafty,
    eon,
    gap,
    gcc,
    gzip,
    mcf,
    parser,
    perlbmk,
    twolf,
    vortex,
    vpr,
)

_MODULES = {
    "bzip2": bzip2,
    "crafty": crafty,
    "eon": eon,
    "gap": gap,
    "gcc": gcc,
    "gzip": gzip,
    "mcf": mcf,
    "parser": parser,
    "perlbmk": perlbmk,
    "twolf": twolf,
    "vortex": vortex,
    "vpr": vpr,
}

#: SPEC CPU2000 INT names, in the paper's Table 2 order.
WORKLOAD_NAMES = tuple(sorted(_MODULES))

_REGISTRY = {
    name: Workload(name, module.DESCRIPTION, module.build)
    for name, module in _MODULES.items()
}


def get_workload(name):
    """Look a workload up by its SPEC-style name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}"
        ) from None


def all_workloads():
    """All twelve workloads in Table 2 order."""
    return [_REGISTRY[name] for name in WORKLOAD_NAMES]
