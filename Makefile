PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test smoke bench bench-quick report clean-cache

check: test smoke

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) scripts/smoke_cache.py
	$(PYTHON) scripts/smoke_exec_engine.py
	$(PYTHON) scripts/smoke_telemetry.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-quick:
	REPRO_BENCH_BUDGET=10000 $(PYTHON) -m pytest \
		benchmarks/bench_exec_engine.py -q -s

report:
	$(PYTHON) -m repro report -o results.md

clean-cache:
	rm -rf "$${REPRO_CACHE_DIR:-$$HOME/.cache/repro/runpoints}"
