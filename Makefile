PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test smoke bench report clean-cache

check: test smoke

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) scripts/smoke_cache.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

report:
	$(PYTHON) -m repro report -o results.md

clean-cache:
	rm -rf "$${REPRO_CACHE_DIR:-$$HOME/.cache/repro/runpoints}"
