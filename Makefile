PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test smoke chaos fuzz fuzz-hostile bench bench-quick \
	bench-gate report clean-cache

check: test smoke

test:
	$(PYTHON) -m pytest -x -q

smoke:
	$(PYTHON) scripts/smoke_cache.py
	$(PYTHON) scripts/smoke_exec_engine.py
	$(PYTHON) scripts/smoke_jit.py
	$(PYTHON) scripts/smoke_telemetry.py
	$(PYTHON) scripts/smoke_trace.py
	$(PYTHON) scripts/smoke_chaos.py
	$(PYTHON) scripts/smoke_smc.py
	$(PYTHON) scripts/smoke_fuzz.py
	$(PYTHON) scripts/smoke_serve.py
	$(PYTHON) scripts/smoke_stream.py

# A longer differential-fuzzing pass than the smoke run: 200 seeded
# programs through every oracle stage, with shrinking on any finding.
fuzz:
	$(PYTHON) -m repro fuzz --count 200 --seed 1 --shrink

# Hostile-guest fuzzing: self-modifying code, protection flips and
# syscalls, with the SMC/protect chaos sites layered on top.
fuzz-hostile:
	$(PYTHON) -m repro fuzz --count 100 --seed 1 --hostile --chaos \
		--shrink --engines naive,jit

# The full differential chaos suite: every workload under every seeded
# fault schedule must converge to the fault-free interpreter.
chaos:
	$(PYTHON) -m pytest tests/test_chaos_differential.py \
		tests/test_faults.py -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-quick:
	REPRO_BENCH_BUDGET=10000 $(PYTHON) -m pytest \
		benchmarks/bench_exec_engine.py -q -s

# Re-run the exec benchmark at the full budget (bench-quick's reduced
# budget is a different run context, which the sentinel would refuse to
# gate), write the record to a scratch file, and gate it against the
# committed baseline.  Exits non-zero on a perf regression.
bench-gate:
	REPRO_BENCH_OUTPUT=/tmp/BENCH_exec.fresh.json $(PYTHON) -m pytest \
		benchmarks/bench_exec_engine.py -q -s
	$(PYTHON) -m repro bench-compare BENCH_exec.json \
		/tmp/BENCH_exec.fresh.json
	REPRO_BENCH_OUTPUT=/tmp/BENCH_warmstart.fresh.json $(PYTHON) -m pytest \
		benchmarks/bench_warm_start.py -q -s
	$(PYTHON) -m repro bench-compare BENCH_warmstart.json \
		/tmp/BENCH_warmstart.fresh.json

report:
	$(PYTHON) -m repro report -o results.md

clean-cache:
	rm -rf "$${REPRO_CACHE_DIR:-$$HOME/.cache/repro/runpoints}"
